//! Full-map directories, one per home site.
//!
//! The directory home of a line is chosen by address interleaving across
//! all 64 sites. Each home tracks, per line, the owning site (if the line
//! is dirty somewhere) and the full sharer bit-vector — 64 sites fit a
//! `u64` exactly.

use netcore::SiteId;
use std::collections::HashMap;

/// The sharing state of one line at its home directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirEntry {
    /// The site holding the line in M or O, if any.
    pub owner: Option<SiteId>,
    /// Bit-vector of sites holding the line in S (and the owner's bit).
    pub sharers: u64,
}

impl DirEntry {
    /// Number of sites holding the line.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// True if no site holds the line.
    pub fn is_idle(&self) -> bool {
        self.sharers == 0 && self.owner.is_none()
    }

    /// Sites holding the line, excluding `except`.
    pub fn sharers_except(&self, except: SiteId) -> Vec<SiteId> {
        (0..64)
            .filter(|&i| self.sharers & (1 << i) != 0 && i != except.index() as u64)
            .map(|i| SiteId::from_index(i as usize))
            .collect()
    }
}

/// One home site's directory.
///
/// # Example
///
/// ```
/// use coherence::directory::Directory;
/// use netcore::SiteId;
///
/// let mut dir = Directory::new();
/// let s3 = SiteId::from_index(3);
/// dir.record_read(0x1000, s3);
/// assert_eq!(dir.entry(0x1000).sharer_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// The sharing state of `line_addr` (idle if never touched).
    pub fn entry(&self, line_addr: u64) -> DirEntry {
        self.entries.get(&line_addr).copied().unwrap_or_default()
    }

    /// Records that `reader` obtained a readable copy. A previous owner
    /// stays owner (MOESI: M/O supplier keeps the dirty line in O).
    pub fn record_read(&mut self, line_addr: u64, reader: SiteId) {
        let e = self.entries.entry(line_addr).or_default();
        e.sharers |= 1 << reader.index();
    }

    /// Records that `writer` obtained an exclusive dirty copy; everyone
    /// else is invalidated.
    pub fn record_write(&mut self, line_addr: u64, writer: SiteId) {
        let e = self.entries.entry(line_addr).or_default();
        e.owner = Some(writer);
        e.sharers = 1 << writer.index();
    }

    /// Records that `site` dropped its copy (eviction).
    pub fn record_evict(&mut self, line_addr: u64, site: SiteId) {
        if let Some(e) = self.entries.get_mut(&line_addr) {
            e.sharers &= !(1 << site.index());
            if e.owner == Some(site) {
                e.owner = None;
            }
            if e.is_idle() {
                self.entries.remove(&line_addr);
            }
        }
    }

    /// Number of tracked (non-idle) lines.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

/// Address-interleaved home assignment: line address modulo site count.
pub fn home_site(line_addr: u64, sites: usize) -> SiteId {
    SiteId::from_index((line_addr % sites as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SiteId {
        SiteId::from_index(i)
    }

    #[test]
    fn untouched_lines_are_idle() {
        let dir = Directory::new();
        assert!(dir.entry(0x42).is_idle());
    }

    #[test]
    fn reads_accumulate_sharers() {
        let mut dir = Directory::new();
        dir.record_read(1, s(0));
        dir.record_read(1, s(5));
        dir.record_read(1, s(9));
        let e = dir.entry(1);
        assert_eq!(e.sharer_count(), 3);
        assert_eq!(e.owner, None);
        assert_eq!(e.sharers_except(s(5)), vec![s(0), s(9)]);
    }

    #[test]
    fn write_claims_ownership_and_clears_sharers() {
        let mut dir = Directory::new();
        dir.record_read(1, s(0));
        dir.record_read(1, s(5));
        dir.record_write(1, s(7));
        let e = dir.entry(1);
        assert_eq!(e.owner, Some(s(7)));
        assert_eq!(e.sharer_count(), 1);
        assert!(e.sharers_except(s(7)).is_empty());
    }

    #[test]
    fn read_after_write_keeps_owner() {
        let mut dir = Directory::new();
        dir.record_write(1, s(7));
        dir.record_read(1, s(2));
        let e = dir.entry(1);
        assert_eq!(e.owner, Some(s(7)));
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn eviction_removes_site_and_reclaims_idle_entries() {
        let mut dir = Directory::new();
        dir.record_write(1, s(7));
        dir.record_evict(1, s(7));
        assert!(dir.entry(1).is_idle());
        assert_eq!(dir.tracked_lines(), 0);
    }

    #[test]
    fn homes_interleave_across_all_sites() {
        let homes: std::collections::HashSet<_> = (0..128u64).map(|l| home_site(l, 64)).collect();
        assert_eq!(homes.len(), 64);
        assert_eq!(home_site(64, 64), s(0));
        assert_eq!(home_site(65, 64), s(1));
    }
}
