//! The per-site shared L2 cache: set-associative, LRU (paper Table 4:
//! 256 KB shared by the site's 8 cores).

use crate::protocol::MoesiState;

/// Cache line size in bytes (one 64-byte network data packet).
pub const LINE_BYTES: u64 = 64;

/// A set-associative, LRU, MOESI-state-tracking cache.
///
/// Addresses are byte addresses; the cache indexes by line.
///
/// # Example
///
/// ```
/// use coherence::cache::SetAssocCache;
/// use coherence::protocol::MoesiState;
///
/// let mut l2 = SetAssocCache::new(256 * 1024, 16);
/// assert_eq!(l2.probe(0x1000), None);
/// l2.insert(0x1000, MoesiState::Exclusive);
/// assert_eq!(l2.probe(0x1000), Some(MoesiState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Line>>, // per set, MRU-first order
    ways: usize,
    set_mask: u64,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64, // full line address (addr >> 6)
    state: MoesiState,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting set count is a nonzero power of two.
    pub fn new(capacity_bytes: u64, ways: usize) -> SetAssocCache {
        assert!(ways > 0, "associativity must be positive");
        let lines = capacity_bytes / LINE_BYTES;
        let num_sets = (lines / ways as u64) as usize;
        assert!(
            num_sets > 0 && num_sets.is_power_of_two(),
            "set count must be a nonzero power of two (got {num_sets})"
        );
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            set_mask: num_sets as u64 - 1,
        }
    }

    fn line_addr(addr: u64) -> u64 {
        addr / LINE_BYTES
    }

    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up `addr`, promoting the line to MRU on a hit.
    pub fn probe(&mut self, addr: u64) -> Option<MoesiState> {
        let line = Self::line_addr(addr);
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|l| l.tag == line)?;
        let entry = self.sets[set].remove(pos);
        self.sets[set].insert(0, entry);
        Some(entry.state)
    }

    /// Looks up `addr` without disturbing LRU order.
    pub fn peek(&self, addr: u64) -> Option<MoesiState> {
        let line = Self::line_addr(addr);
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .find(|l| l.tag == line)
            .map(|l| l.state)
    }

    /// Inserts (or overwrites) `addr` in `state`; returns the evicted
    /// victim's `(line_address_in_bytes, state)` if the set was full.
    pub fn insert(&mut self, addr: u64, state: MoesiState) -> Option<(u64, MoesiState)> {
        let line = Self::line_addr(addr);
        let set = self.set_index(line);
        if let Some(pos) = self.sets[set].iter().position(|l| l.tag == line) {
            self.sets[set].remove(pos);
        }
        self.sets[set].insert(0, Line { tag: line, state });
        if self.sets[set].len() > self.ways {
            let victim = self.sets[set].pop().expect("set was over-full");
            Some((victim.tag * LINE_BYTES, victim.state))
        } else {
            None
        }
    }

    /// Changes the state of a resident line; no-op if absent.
    pub fn set_state(&mut self, addr: u64, state: MoesiState) {
        let line = Self::line_addr(addr);
        let set = self.set_index(line);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.tag == line) {
            if state == MoesiState::Invalid {
                let pos = self.sets[set]
                    .iter()
                    .position(|l| l.tag == line)
                    .expect("line just found");
                self.sets[set].remove(pos);
            } else {
                l.state = state;
            }
        }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MoesiState::*;

    #[test]
    fn geometry_of_the_papers_l2() {
        let l2 = SetAssocCache::new(256 * 1024, 16);
        // 256 KB / 64 B = 4096 lines; 16 ways -> 256 sets.
        assert_eq!(l2.capacity_lines(), 4096);
        assert_eq!(l2.sets.len(), 256);
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = SetAssocCache::new(4096, 2);
        assert_eq!(c.probe(0x40), None);
        c.insert(0x40, Shared);
        assert_eq!(c.probe(0x40), Some(Shared));
        // Same line, different byte offset.
        assert_eq!(c.probe(0x7F), Some(Shared));
        // Different line.
        assert_eq!(c.probe(0x80), None);
    }

    #[test]
    fn lru_evicts_the_coldest_way() {
        let mut c = SetAssocCache::new(4096, 2); // 32 sets
        let set_stride = 32 * LINE_BYTES;
        let (a, b, d) = (0, set_stride, 2 * set_stride); // same set
        c.insert(a, Exclusive);
        c.insert(b, Exclusive);
        c.probe(a); // a becomes MRU; b is LRU
        let evicted = c.insert(d, Exclusive).expect("set overflows");
        assert_eq!(evicted.0, b);
        assert_eq!(c.peek(a), Some(Exclusive));
        assert_eq!(c.peek(b), None);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut c = SetAssocCache::new(4096, 2);
        c.insert(0, Shared);
        assert!(c.insert(0, Modified).is_none());
        assert_eq!(c.peek(0), Some(Modified));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn set_state_to_invalid_removes_the_line() {
        let mut c = SetAssocCache::new(4096, 2);
        c.insert(0, Shared);
        c.set_state(0, Invalid);
        assert_eq!(c.peek(0), None);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn set_state_on_absent_line_is_a_no_op() {
        let mut c = SetAssocCache::new(4096, 2);
        c.set_state(0x1234, Owned);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = SetAssocCache::new(4096, 2); // 32 sets
        for i in 0..32u64 {
            c.insert(i * LINE_BYTES, Exclusive);
        }
        assert_eq!(c.resident_lines(), 32);
        for i in 0..32u64 {
            assert_eq!(c.peek(i * LINE_BYTES), Some(Exclusive), "set {i}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = SetAssocCache::new(3 * 64, 1);
    }
}
