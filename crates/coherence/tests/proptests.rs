//! Property-based tests of the coherence substrate's invariants.

use coherence::cache::{SetAssocCache, LINE_BYTES};
use coherence::directory::{home_site, Directory};
use coherence::protocol::{local_read, local_write, remote_read, remote_write, MoesiState};
use netcore::SiteId;
use proptest::prelude::*;

/// A reference system: N caches (as state maps) plus a directory, driven
/// by random reads/writes through the pure protocol functions.
#[derive(Debug, Clone, Copy)]
enum Access {
    Read { site: usize, line: u64 },
    Write { site: usize, line: u64 },
}

fn access_strategy(sites: usize, lines: u64) -> impl Strategy<Value = Access> {
    (0..sites, 0..lines, proptest::bool::ANY).prop_map(|(site, line, w)| {
        if w {
            Access::Write { site, line }
        } else {
            Access::Read { site, line }
        }
    })
}

proptest! {
    /// The single-writer invariant: after any access sequence, a line
    /// writable in one cache is resident nowhere else, and at most one
    /// cache holds it dirty.
    #[test]
    fn moesi_single_writer_invariant(
        accesses in proptest::collection::vec(access_strategy(6, 8), 1..300)
    ) {
        let sites = 6;
        let mut states = vec![std::collections::HashMap::<u64, MoesiState>::new(); sites];

        for &a in &accesses {
            match a {
                Access::Read { site, line } => {
                    let mine = states[site].get(&line).copied().unwrap_or(MoesiState::Invalid);
                    let t = local_read(mine);
                    if t.is_miss {
                        // Everyone holding the line reacts to a remote read.
                        let mut someone_supplies = false;
                        for (i, s) in states.iter_mut().enumerate() {
                            if i == site { continue; }
                            if let Some(st) = s.get(&line).copied() {
                                if st.supplies_data() { someone_supplies = true; }
                                s.insert(line, remote_read(st));
                            }
                        }
                        // The reader lands in S if shared, E if alone.
                        let landing = if someone_supplies || states.iter().enumerate().any(|(i, s)| i != site && s.contains_key(&line)) {
                            MoesiState::Shared
                        } else {
                            MoesiState::Exclusive
                        };
                        states[site].insert(line, landing);
                    }
                }
                Access::Write { site, line } => {
                    let mine = states[site].get(&line).copied().unwrap_or(MoesiState::Invalid);
                    let t = local_write(mine);
                    if t.needs_invalidations || t.is_miss {
                        for (i, s) in states.iter_mut().enumerate() {
                            if i == site { continue; }
                            if s.contains_key(&line) {
                                let st = s[&line];
                                let next = remote_write(st);
                                prop_assert_eq!(next, MoesiState::Invalid);
                                s.remove(&line);
                            }
                        }
                    }
                    states[site].insert(line, MoesiState::Modified);
                }
            }

            // Invariants after every step.
            for line in 0..8u64 {
                let holders: Vec<MoesiState> = states
                    .iter()
                    .filter_map(|s| s.get(&line).copied())
                    .collect();
                let writable = holders.iter().filter(|s| s.is_writable()).count();
                let dirty = holders.iter().filter(|s| s.is_dirty()).count();
                prop_assert!(writable <= 1, "line {line}: {writable} writable copies");
                if writable == 1 {
                    prop_assert_eq!(holders.len(), 1, "writable line {} also shared", line);
                }
                prop_assert!(dirty <= 1, "line {line}: {dirty} dirty copies");
            }
        }
    }

    /// The cache never exceeds its capacity, and a probe immediately after
    /// an insert always hits with the inserted state.
    #[test]
    fn cache_capacity_and_probe_after_insert(
        addrs in proptest::collection::vec(0u64..100_000, 1..500)
    ) {
        let mut c = SetAssocCache::new(4096, 4); // 64 lines
        for &a in &addrs {
            c.insert(a, MoesiState::Exclusive);
            prop_assert_eq!(c.probe(a), Some(MoesiState::Exclusive));
            prop_assert!(c.resident_lines() <= c.capacity_lines());
        }
    }

    /// LRU never evicts the line that was just touched.
    #[test]
    fn lru_never_evicts_the_most_recent(
        addrs in proptest::collection::vec(0u64..10_000, 2..300)
    ) {
        let mut c = SetAssocCache::new(2048, 2);
        for &a in &addrs {
            if let Some((victim, _)) = c.insert(a, MoesiState::Shared) {
                prop_assert_ne!(victim / LINE_BYTES, a / LINE_BYTES);
            }
        }
    }

    /// Directory sharer bookkeeping: after random reads/writes/evictions,
    /// the sharer count equals the distinct readers since the last write,
    /// and `sharers_except` never contains its argument.
    #[test]
    fn directory_bookkeeping(ops in proptest::collection::vec((0usize..3, 0usize..8), 1..200)) {
        let mut dir = Directory::new();
        let mut reference: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let line = 7u64;
        for &(kind, site) in &ops {
            let s = SiteId::from_index(site);
            match kind {
                0 => {
                    dir.record_read(line, s);
                    reference.insert(site);
                }
                1 => {
                    dir.record_write(line, s);
                    reference.clear();
                    reference.insert(site);
                }
                _ => {
                    dir.record_evict(line, s);
                    reference.remove(&site);
                }
            }
            let e = dir.entry(line);
            prop_assert_eq!(e.sharer_count() as usize, reference.len());
            for probe in 0..8 {
                let p = SiteId::from_index(probe);
                prop_assert!(!e.sharers_except(p).contains(&p));
            }
        }
    }

    /// Home assignment is stable and uniformly covers all sites.
    #[test]
    fn home_site_is_total_and_stable(line in 0u64..1u64 << 48) {
        let h1 = home_site(line, 64);
        let h2 = home_site(line, 64);
        prop_assert_eq!(h1, h2);
        prop_assert!(h1.index() < 64);
        prop_assert_eq!(h1.index() as u64, line % 64);
    }
}
