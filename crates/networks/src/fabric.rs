//! Multi-macrochip fabric: `M×M` chips joined by board-level photonic
//! links between per-chip gateway sites (ROADMAP item 2).
//!
//! A [`FabricNetwork`] wraps one inner network instance *per chip* — any
//! of the six architectures — and extends the hierarchical design's
//! bridge idea one level up: each chip's local `(0, 0)` site is its
//! *gateway*, sourcing a dedicated WDM board link to every other
//! gateway. A cross-chip packet rides its source chip's network to the
//! gateway (leg 1), crosses the gateway-to-gateway board link, and rides
//! the destination chip's network from its gateway to the destination
//! (leg 2). Each gateway crossing is an electronic store-and-forward:
//! it emits a `Hop` trace event and accounts the packet's bytes as
//! routed bytes, which the auditor's `fabric.inter-chip-bytes` invariant
//! and the router-energy model both consume.
//!
//! The whole fabric runs inside the caller's single event loop: the
//! wrapper owns one calendar queue for board-link events and forwards
//! `advance` to whichever chip holds the globally earliest event, so the
//! existing sweep/fault/replay drivers, the slab-leak check and the
//! flight recorder all work unchanged. The wrapper's tracer is *never*
//! propagated to the inner chips — inner activity is summarized at the
//! fabric boundary (their relay work is re-emitted as gateway-anchored
//! `Hop` events when a leg completes), keeping the event stream globally
//! addressed.
//!
//! Flow control mirrors the hierarchical bridge: a cross-chip admission
//! reserves a slot on its board link (`link_load`) and injection is
//! refused while the link is full, so a completed leg 1 always finds
//! buffer space. A leg-2 injection refused by a busy destination chip
//! parks in a per-chip retry queue and is re-offered after that chip's
//! next event — the chip is only ever full while it has work in flight,
//! so the retry always drains.

use desim::{Span, Time, TraceEvent, Tracer};
use netcore::{
    FabricConfig, FaultResponse, FxHashMap, MacrochipConfig, NetFault, NetStats, Network,
    NetworkKind, Packet, SiteId, SlabStats, TxChannel,
};
use std::collections::VecDeque;

#[derive(Debug)]
enum Ev {
    /// A board link finished serializing; pump its queue.
    LinkFree { link: usize },
    /// A packet's last bit reached the ingress gateway.
    LinkArrive { packet: u64 },
}

/// Book-keeping for one packet crossing chips, keyed by packet id. The
/// original (globally addressed) packet is kept verbatim; legs run as
/// chip-local copies whose timestamps and routed bytes are merged back
/// here as each completes.
#[derive(Debug)]
struct Transit {
    original: Packet,
    src_chip: usize,
    dst_chip: usize,
    /// Relay bytes accumulated so far (inner forwards + gateway hops).
    routed_bytes: u32,
    arb_start: Option<Time>,
    tx_start: Option<Time>,
    tx_end: Option<Time>,
}

/// An `M×M` fabric of identical chips behind the [`Network`] trait.
///
/// `config()` exposes the flat global grid, so traffic patterns, fault
/// plans and statistics address fabric-global [`SiteId`]s; the wrapper
/// translates to chip-local ids at the boundary.
pub struct FabricNetwork {
    fabric: FabricConfig,
    /// The fabric viewed as one flat grid (what `config()` returns).
    global: MacrochipConfig,
    kind: NetworkKind,
    /// One inner network per chip, row-major board order, each built on
    /// the *chip* config and addressing chip-local sites.
    chips: Vec<Box<dyn Network>>,
    /// Gateway-to-gateway board links, indexed `src_chip * k + dst_chip`.
    links: Vec<TxChannel<u64>>,
    /// Per-link admission count (reserved slots not yet transmitting);
    /// bounded by `queue_capacity` — the gateway buffer limit.
    link_load: Vec<usize>,
    link_bw: f64,
    transit: FxHashMap<u64, Transit>,
    /// Leg-2 packets refused by a busy destination chip, re-offered
    /// after that chip's next event.
    pending: Vec<VecDeque<Packet>>,
    events: desim::EventQueue<Ev>,
    delivered: Vec<Packet>,
    stats: NetStats,
    tracer: Tracer,
}

impl FabricNetwork {
    /// Builds a `kind` network on every chip of `fabric` and wires the
    /// board links between their gateways.
    pub fn new(kind: NetworkKind, fabric: FabricConfig) -> FabricNetwork {
        fabric.validate();
        let k = fabric.chips();
        let link_bw = fabric.link_bytes_per_ns();
        FabricNetwork {
            fabric,
            global: fabric.global_config(),
            kind,
            chips: (0..k).map(|_| crate::build(kind, fabric.chip)).collect(),
            links: (0..k * k)
                .map(|_| TxChannel::new(link_bw, fabric.chip.queue_capacity))
                .collect(),
            link_load: vec![0; k * k],
            link_bw,
            transit: FxHashMap::default(),
            pending: (0..k).map(|_| VecDeque::new()).collect(),
            events: desim::EventQueue::new(),
            delivered: Vec::with_capacity(256),
            stats: NetStats::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// The fabric configuration this network was built over.
    pub fn fabric_config(&self) -> &FabricConfig {
        &self.fabric
    }

    fn link_index(&self, src_chip: usize, dst_chip: usize) -> usize {
        src_chip * self.chips.len() + dst_chip
    }

    /// Re-emits an inner chip's relay work as gateway-anchored `Hop`
    /// events: the inner tracer is disconnected, so the bytes a leg
    /// accumulated in `routed_bytes` are surfaced here, one event per
    /// store-and-forward, keeping the auditor's hop×bytes reconstruction
    /// equal to the final `NetStats::routed_bytes` counter.
    fn emit_inner_hops(&mut self, id: u64, routed: u32, bytes: u32, site: usize, at: Time) {
        if routed == 0 || bytes == 0 {
            return;
        }
        debug_assert_eq!(routed % bytes, 0, "inner relays forward whole packets");
        for _ in 0..(routed / bytes) {
            self.tracer.emit(at, || TraceEvent::Hop {
                packet: id,
                at: site,
            });
        }
    }

    fn emit_relay(&mut self, id: u64, gateway: SiteId, at: Time) {
        self.tracer.emit(at, || TraceEvent::Hop {
            packet: id,
            at: gateway.index(),
        });
    }

    fn deliver(&mut self, mut packet: Packet, at: Time) {
        packet.delivered = Some(at);
        self.stats.on_deliver(&packet);
        self.tracer.emit(at, || TraceEvent::Deliver {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            latency: at.saturating_since(packet.created),
        });
        self.delivered.push(packet);
    }

    /// Starts the link's next transmission if it is idle.
    fn pump_link(&mut self, link: usize, now: Time) {
        if let Some((id, finish)) = self.links[link].begin_if_ready(now) {
            self.link_load[link] -= 1;
            let (src_chip, dst_chip) = {
                let tr = self.transit.get_mut(&id).expect("board packet tracked");
                if tr.arb_start.is_none() {
                    tr.arb_start = Some(now);
                }
                if tr.tx_start.is_none() {
                    tr.tx_start = Some(now);
                }
                tr.tx_end = Some(finish);
                (tr.src_chip, tr.dst_chip)
            };
            let flight = Span::from_ns_f64(self.fabric.board_flight_ns(src_chip, dst_chip));
            self.events.push(finish, Ev::LinkFree { link });
            self.events
                .push(finish + flight, Ev::LinkArrive { packet: id });
        }
    }

    /// A completed leg drained out of chip `i`: either the gateway end
    /// of leg 1 (forward onto the board) or the destination end of leg 2
    /// (finalize), or a same-chip delivery (re-globalize).
    fn on_chip_delivery(&mut self, i: usize, leg: Packet, at: Time) {
        let id = leg.id.0;
        let gateway = self.fabric.gateway(i);
        self.emit_inner_hops(id, leg.routed_bytes, leg.bytes, gateway.index(), at);
        let Some(tr) = self.transit.get_mut(&id) else {
            // Same-chip traffic: restore global endpoints and deliver.
            let mut p = leg;
            p.src = self.fabric.global(i, p.src);
            p.dst = self.fabric.global(i, p.dst);
            self.deliver(p, at);
            return;
        };
        if tr.src_chip == i {
            // Leg 1 reached the egress gateway: merge its timestamps,
            // account the gateway store-and-forward, and queue the board
            // link (space was reserved at admission).
            tr.routed_bytes += leg.routed_bytes + leg.bytes;
            if tr.arb_start.is_none() {
                tr.arb_start = leg.arb_start;
            }
            if tr.tx_start.is_none() {
                tr.tx_start = leg.tx_start;
            }
            let (sc, dc, bytes) = (tr.src_chip, tr.dst_chip, leg.bytes);
            self.emit_relay(id, gateway, at);
            let link = self.link_index(sc, dc);
            self.links[link]
                .try_enqueue(id, bytes)
                .unwrap_or_else(|_| panic!("admission reserved a full board link"));
            self.pump_link(link, at);
        } else {
            // Leg 2 reached the destination: assemble the final packet.
            tr.routed_bytes += leg.routed_bytes;
            let tr = self.transit.remove(&id).expect("checked present");
            let mut p = tr.original;
            p.routed_bytes = tr.routed_bytes;
            p.arb_start = tr.arb_start;
            p.tx_start = tr.tx_start;
            p.tx_end = leg.tx_end.or(tr.tx_end);
            self.deliver(p, at);
        }
    }

    fn on_link_arrive(&mut self, id: u64, at: Time) {
        let (dst_chip, dst, bytes, kind) = {
            let tr = self.transit.get(&id).expect("board packet tracked");
            (
                tr.dst_chip,
                tr.original.dst,
                tr.original.bytes,
                tr.original.kind,
            )
        };
        let gateway = self.fabric.gateway(dst_chip);
        if dst == gateway {
            // The ingress gateway is the destination: no second relay.
            let tr = self.transit.remove(&id).expect("checked present");
            let mut p = tr.original;
            p.routed_bytes = tr.routed_bytes;
            p.arb_start = tr.arb_start;
            p.tx_start = tr.tx_start;
            p.tx_end = tr.tx_end;
            self.deliver(p, at);
            return;
        }
        // Gateway store-and-forward into the destination chip.
        self.emit_relay(id, gateway, at);
        self.transit
            .get_mut(&id)
            .expect("checked present")
            .routed_bytes += bytes;
        let local_gw = self.fabric.chip.grid.site(0, 0);
        let leg2 = Packet::new(
            netcore::PacketId(id),
            local_gw,
            self.fabric.local(dst),
            bytes,
            kind,
            at,
        );
        self.offer_leg2(dst_chip, leg2, at);
    }

    fn offer_leg2(&mut self, chip: usize, leg2: Packet, now: Time) {
        match self.chips[chip].inject(leg2, now) {
            Ok(()) => {}
            Err(refused) => self.pending[chip].push_back(refused),
        }
    }

    fn retry_pending(&mut self, chip: usize, now: Time) {
        while let Some(leg2) = self.pending[chip].pop_front() {
            if let Err(refused) = self.chips[chip].inject(leg2, now) {
                self.pending[chip].push_front(refused);
                break;
            }
        }
    }

    /// The earliest pending instant across the board queue and every
    /// chip.
    fn earliest(&self) -> Option<Time> {
        let mut t = self.events.peek_time();
        for chip in &self.chips {
            t = match (t, chip.next_event()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        t
    }

    fn globalize_evicted(&self, chip: usize, mut p: Packet) -> Packet {
        p.src = self.fabric.global(chip, p.src);
        p.dst = self.fabric.global(chip, p.dst);
        p
    }

    /// Maps an inner chip's evicted leg packets back to fabric-global
    /// originals, releasing any board-link reservations they held.
    fn absorb_evictions(&mut self, chip: usize, evicted: Vec<Packet>) -> Vec<Packet> {
        evicted
            .into_iter()
            .map(|leg| match self.transit.remove(&leg.id.0) {
                Some(tr) => {
                    if tr.src_chip == chip {
                        // Leg 1 never reached the board: free its slot.
                        let link = self.link_index(tr.src_chip, tr.dst_chip);
                        self.link_load[link] -= 1;
                    }
                    tr.original
                }
                None => self.globalize_evicted(chip, leg),
            })
            .collect()
    }
}

impl Network for FabricNetwork {
    fn kind(&self) -> NetworkKind {
        self.kind
    }

    fn config(&self) -> &MacrochipConfig {
        &self.global
    }

    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet> {
        let (sc, dc) = (
            self.fabric.chip_of(packet.src),
            self.fabric.chip_of(packet.dst),
        );
        let trace_fields = self.tracer.is_enabled().then(|| {
            (
                packet.id.0,
                packet.src.index(),
                packet.dst.index(),
                packet.bytes,
            )
        });
        if sc == dc {
            let mut leg = packet;
            leg.src = self.fabric.local(packet.src);
            leg.dst = self.fabric.local(packet.dst);
            return match self.chips[sc].inject(leg, now) {
                Ok(()) => {
                    self.stats.on_inject(now);
                    if let Some((id, src, dst, bytes)) = trace_fields {
                        self.tracer.emit(now, || TraceEvent::Inject {
                            packet: id,
                            src,
                            dst,
                            bytes,
                        });
                    }
                    Ok(())
                }
                Err(_) => {
                    self.stats.on_reject();
                    Err(packet)
                }
            };
        }
        let link = self.link_index(sc, dc);
        if self.link_load[link] >= self.fabric.chip.queue_capacity {
            self.stats.on_reject();
            return Err(packet);
        }
        if packet.src == self.fabric.gateway(sc) {
            // A gateway sending cross-chip skips its own chip's network
            // and queues straight onto the board link (no relay hop: the
            // packet originates in the gateway's buffers).
            self.link_load[link] += 1;
            self.transit.insert(
                packet.id.0,
                Transit {
                    original: packet,
                    src_chip: sc,
                    dst_chip: dc,
                    routed_bytes: 0,
                    arb_start: Some(now),
                    tx_start: None,
                    tx_end: None,
                },
            );
            self.links[link]
                .try_enqueue(packet.id.0, packet.bytes)
                .expect("checked not full");
            self.stats.on_inject(now);
            if let Some((id, src, dst, bytes)) = trace_fields {
                self.tracer.emit(now, || TraceEvent::Inject {
                    packet: id,
                    src,
                    dst,
                    bytes,
                });
            }
            self.pump_link(link, now);
            return Ok(());
        }
        // Leg 1: ride the source chip's network to its gateway.
        let mut leg = packet;
        leg.src = self.fabric.local(packet.src);
        leg.dst = self.fabric.chip.grid.site(0, 0);
        match self.chips[sc].inject(leg, now) {
            Ok(()) => {
                self.link_load[link] += 1;
                self.transit.insert(
                    packet.id.0,
                    Transit {
                        original: packet,
                        src_chip: sc,
                        dst_chip: dc,
                        routed_bytes: 0,
                        arb_start: None,
                        tx_start: None,
                        tx_end: None,
                    },
                );
                self.stats.on_inject(now);
                if let Some((id, src, dst, bytes)) = trace_fields {
                    self.tracer.emit(now, || TraceEvent::Inject {
                        packet: id,
                        src,
                        dst,
                        bytes,
                    });
                }
                Ok(())
            }
            Err(_) => {
                self.stats.on_reject();
                Err(packet)
            }
        }
    }

    fn next_event(&self) -> Option<Time> {
        self.earliest()
    }

    fn advance(&mut self, now: Time) {
        // Process the globally earliest instant (board queue or a chip)
        // until nothing remains at or before `now`. Ties resolve
        // deterministically: board events first, then chips in board
        // order. Every handler runs at its event's own timestamp, so the
        // interleaving is time-faithful.
        while let Some(t) = self.earliest() {
            if t > now {
                break;
            }
            while let Some((at, ev)) = self.events.pop_due(t) {
                match ev {
                    Ev::LinkFree { link } => self.pump_link(link, at),
                    Ev::LinkArrive { packet } => self.on_link_arrive(packet, at),
                }
            }
            for i in 0..self.chips.len() {
                if self.chips[i].next_event().is_some_and(|ct| ct <= t) {
                    self.chips[i].advance(t);
                    for leg in self.chips[i].drain_delivered() {
                        self.on_chip_delivery(i, leg, t);
                    }
                    if !self.pending[i].is_empty() {
                        self.retry_pending(i, t);
                    }
                }
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.delivered)
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.delivered);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn events_processed(&self) -> u64 {
        self.events.popped() + self.chips.iter().map(|c| c.events_processed()).sum::<u64>()
    }

    fn slab_stats(&self) -> Option<SlabStats> {
        let mut merged: Option<SlabStats> = None;
        for chip in &self.chips {
            let s = chip.slab_stats()?;
            merged = Some(match merged {
                Some(m) => m.merge(s),
                None => s,
            });
        }
        merged
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        // Deliberately not forwarded to the chips: inner events carry
        // chip-local site ids (and kind-specific payloads the global
        // auditor must not see); the fabric re-emits their relay work at
        // its own boundary instead.
        self.tracer = tracer;
    }

    /// Cross-chip link faults degrade the matching board link (spare
    /// wavelength: half bandwidth); everything else forwards to the chip
    /// owning the fault's site(s), with evicted leg packets mapped back
    /// to their fabric-global originals.
    fn apply_fault(&mut self, fault: NetFault, now: Time) -> FaultResponse {
        match fault {
            NetFault::LinkKill { src, dst } | NetFault::LinkRepair { src, dst }
                if self.fabric.chip_of(src) != self.fabric.chip_of(dst) =>
            {
                let link = self.link_index(self.fabric.chip_of(src), self.fabric.chip_of(dst));
                if matches!(fault, NetFault::LinkKill { .. }) {
                    self.links[link].set_bytes_per_ns(self.link_bw / 2.0);
                    FaultResponse::handled("spare-wavelength")
                } else {
                    self.links[link].set_bytes_per_ns(self.link_bw);
                    FaultResponse::handled("full-bandwidth")
                }
            }
            _ => {
                let chip = self.fabric.chip_of(fault.site());
                let local = match fault {
                    NetFault::LinkKill { src, dst } => NetFault::LinkKill {
                        src: self.fabric.local(src),
                        dst: self.fabric.local(dst),
                    },
                    NetFault::LinkRepair { src, dst } => NetFault::LinkRepair {
                        src: self.fabric.local(src),
                        dst: self.fabric.local(dst),
                    },
                    NetFault::LaserLoss { site } => NetFault::LaserLoss {
                        site: self.fabric.local(site),
                    },
                    NetFault::LaserRestore { site } => NetFault::LaserRestore {
                        site: self.fabric.local(site),
                    },
                    NetFault::SiteKill { site } => NetFault::SiteKill {
                        site: self.fabric.local(site),
                    },
                };
                let mut response = self.chips[chip].apply_fault(local, now);
                if !response.evicted.is_empty() {
                    let evicted = std::mem::take(&mut response.evicted);
                    response.evicted = self.absorb_evictions(chip, evicted);
                }
                response
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{MessageKind, PacketId};

    fn fabric() -> FabricConfig {
        FabricConfig::grid(2, MacrochipConfig::scaled())
    }

    fn data(id: u64, src: SiteId, dst: SiteId, at: Time) -> Packet {
        Packet::new(PacketId(id), src, dst, 64, MessageKind::Data, at)
    }

    fn run_until_idle(net: &mut dyn Network) {
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
    }

    #[test]
    fn same_chip_traffic_matches_the_bare_network() {
        // A packet whose endpoints share a chip must see exactly the
        // latency the bare single-chip network gives the same local
        // pair — the fabric only translates addresses.
        let f = fabric();
        let chip = MacrochipConfig::scaled();
        for kind in [NetworkKind::TokenRing, NetworkKind::Hierarchical] {
            let mut bare = crate::build(kind, chip);
            let (a, b) = (chip.grid.site(1, 1), chip.grid.site(6, 2));
            bare.inject(data(1, a, b, Time::ZERO), Time::ZERO).unwrap();
            run_until_idle(bare.as_mut());
            let bare_latency = bare.drain_delivered()[0].latency().unwrap();

            let mut net = FabricNetwork::new(kind, f);
            // The same pair on chip 3 (offset by (8, 8) globally).
            let g = f.global_config().grid;
            let (ga, gb) = (g.site(9, 9), g.site(14, 10));
            net.inject(data(1, ga, gb, Time::ZERO), Time::ZERO).unwrap();
            run_until_idle(&mut net);
            let done = net.drain_delivered();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].src, ga, "{kind}");
            assert_eq!(done[0].dst, gb, "{kind}");
            assert_eq!(done[0].latency().unwrap(), bare_latency, "{kind}");
        }
    }

    #[test]
    fn gateway_to_gateway_crosses_one_board_link() {
        // Gateway 0 -> gateway 1: no chip legs at all. 64 B at 20 B/ns
        // = 3.2 ns serialization + 25 cm at 0.1 ns/cm = 2.5 ns flight.
        let f = fabric();
        let mut net = FabricNetwork::new(NetworkKind::TokenRing, f);
        let (a, b) = (f.gateway(0), f.gateway(1));
        net.inject(data(7, a, b, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut net);
        let done = net.drain_delivered();
        assert_eq!(done.len(), 1);
        let p = &done[0];
        assert_eq!(p.delivered, Some(Time::from_ps(5_700)));
        // No relay: the packet originates and terminates in gateway
        // buffers.
        assert_eq!(p.routed_bytes, 0);
        assert_eq!(net.stats().delivered_packets(), 1);
    }

    #[test]
    fn full_two_leg_path_relays_at_both_gateways() {
        let f = fabric();
        let g = f.global_config().grid;
        for kind in [NetworkKind::TokenRing, NetworkKind::PointToPoint] {
            let mut net = FabricNetwork::new(kind, f);
            // Chip 0 interior -> chip 3 interior: leg 1, board, leg 2.
            let (a, b) = (g.site(2, 3), g.site(11, 12));
            net.inject(data(9, a, b, Time::ZERO), Time::ZERO).unwrap();
            run_until_idle(&mut net);
            let done = net.drain_delivered();
            assert_eq!(done.len(), 1, "{kind}");
            let p = &done[0];
            assert_eq!((p.src, p.dst), (a, b), "{kind}");
            // Two gateway store-and-forwards (the inner networks of
            // these kinds add no electronic hops of their own).
            assert_eq!(p.routed_bytes, 128, "{kind}");
            // Lower bound: leg-1 ser + board ser 3.2 + flight 2.5.
            assert!(p.latency().unwrap() > Span::from_ns_f64(5.7), "{kind}");
        }
    }

    #[test]
    fn cross_chip_link_kill_halves_board_bandwidth() {
        let f = fabric();
        let mut net = FabricNetwork::new(NetworkKind::TokenRing, f);
        let (a, b) = (f.gateway(0), f.gateway(1));
        let r = net.apply_fault(NetFault::LinkKill { src: a, dst: b }, Time::ZERO);
        assert!(r.handled);
        net.inject(data(1, a, b, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut net);
        let p = &net.drain_delivered()[0];
        // 64 B at 10 B/ns = 6.4 ns + 2.5 ns flight.
        assert_eq!(p.delivered, Some(Time::from_ps(8_900)));

        let r = net.apply_fault(NetFault::LinkRepair { src: a, dst: b }, Time::ZERO);
        assert!(r.handled);
    }

    #[test]
    fn same_chip_fault_forwards_to_the_owning_chip() {
        let f = fabric();
        let g = f.global_config().grid;
        let mut net = FabricNetwork::new(NetworkKind::Hierarchical, f);
        // Both endpoints on chip 0: the chip's own degradation policy.
        let r = net.apply_fault(
            NetFault::LinkKill {
                src: g.site(0, 0),
                dst: g.site(3, 3),
            },
            Time::ZERO,
        );
        assert!(r.handled);
        assert_eq!(r.action, "spare-wavelength");
    }

    #[test]
    fn board_admission_is_bounded() {
        let f = fabric();
        let mut net = FabricNetwork::new(NetworkKind::TokenRing, f);
        let (a, b) = (f.gateway(0), f.gateway(1));
        let cap = f.chip.queue_capacity;
        let mut accepted = 0;
        for id in 0..(cap as u64 + 8) {
            if net.inject(data(id, a, b, Time::ZERO), Time::ZERO).is_ok() {
                accepted += 1;
            }
        }
        // One transmission in flight plus `cap` reserved slots.
        assert_eq!(accepted, cap + 1, "admission stops at the gateway buffer");
        assert_eq!(net.stats().rejected_packets(), 7);
        run_until_idle(&mut net);
        assert_eq!(net.drain_delivered().len(), cap + 1);
        // All slabs idle after the drain.
        let slab = net.slab_stats().expect("inner networks expose slabs");
        assert_eq!(slab.live, 0);
    }

    #[test]
    fn single_chip_fabric_wrapper_is_never_built() {
        // `build_fabric` must return the bare network for M=1 so the
        // single-chip path stays byte-identical; the wrapper itself is
        // reserved for M >= 2.
        let single = FabricConfig::single(MacrochipConfig::scaled());
        let net = crate::build_fabric(NetworkKind::TokenRing, &single);
        assert_eq!(net.config().grid.sites(), 64);
    }
}
