//! The circuit-switched optical torus (paper §4.5).
//!
//! An 8×8 torus of 4×4 optical switches carries wide (320 GB/s) optical
//! circuits. Before any data moves, a path-setup message travels hop by
//! hop from the source to the destination over a *low-bandwidth optical
//! control network* (the macrochip adaptation replaces the original
//! electronic setup network, which would have required an active
//! substrate). Each control hop serializes the setup packet at one
//! wavelength (2.5 GB/s), crosses one site pitch of waveguide, and spends
//! a router cycle setting the local 4×4 switch. The destination
//! acknowledges, data flashes across the established circuit, and the
//! circuit is torn down.
//!
//! For cache-line-sized transfers the setup round trip dominates utterly —
//! the behaviour behind the paper's 2.5%-of-peak sustained bandwidth
//! (§6.1). Gateways sustain a small number of concurrent circuits
//! ([`MAX_CIRCUITS_PER_GATEWAY`]).

use desim::{EventQueue, Span, Time, TraceEvent, Tracer};
use netcore::{
    FaultResponse, FxHashMap, FxHashSet, MacrochipConfig, NetFault, NetStats, Network, NetworkKind,
    Packet, PacketRef, PacketSlab, SiteId, SlabStats, TxChannel,
};
use std::collections::VecDeque;

/// Wavelengths per data circuit (128 × 2.5 GB/s = 320 GB/s).
pub const LAMBDAS_PER_CIRCUIT: usize = 128;

/// Default concurrent circuits a site's gateway can source (and sink):
/// one per sourced waveguide (§4.5: each site sources 16 waveguides).
pub const MAX_CIRCUITS_PER_GATEWAY: usize = 16;

/// Size of a path-setup control message: routing, wavelength-assignment
/// and virtual-channel state for the whole path, in bytes.
pub const SETUP_BYTES: u32 = 32;

/// Per-hop processing of a setup message at a switch point: O-E
/// conversion, route computation, driving the 4x4 switch, and E-O
/// remodulation onto the next control segment.
pub const HOP_PROCESSING: desim::Span = desim::Span::from_ps(2_000);

/// Default packets carried per circuit: the paper sets up and tears down
/// a circuit per transfer, which is exactly why small messages fare so
/// badly (§6.1). The batching ablation raises this.
pub const DEFAULT_BATCH: usize = 1;

#[derive(Debug, Clone)]
struct Circuit {
    src: SiteId,
    dst: SiteId,
    packets: Vec<PacketRef>,
    hops: usize,
    /// Control hops the setup message has actually taken, counting
    /// fault detours; bounded to detect unroutable paths.
    setup_hops: usize,
}

#[derive(Debug)]
enum Ev {
    /// A control link finished serializing; start its next setup message.
    CtrlTxDone { link: usize },
    /// A setup message reached (and was routed by) site `at`.
    SetupArrive { circuit: u64, at: SiteId },
    /// The acknowledgment reached the source; data transmission starts.
    AckArrive { circuit: u64 },
    /// The last data bit reached the destination.
    DataDone { circuit: u64 },
    /// Intra-site loop-back delivery.
    Deliver { packet: PacketRef },
}

/// The circuit-switched torus network.
///
/// # Example
///
/// ```
/// use desim::Time;
/// use netcore::{MacrochipConfig, MessageKind, Network, Packet, PacketId};
/// use networks::CircuitSwitchedNetwork;
///
/// let config = MacrochipConfig::scaled();
/// let mut net = CircuitSwitchedNetwork::new(config);
/// let p = Packet::new(PacketId(0), config.grid.site(0, 0), config.grid.site(2, 2),
///                     64, MessageKind::Data, Time::ZERO);
/// net.inject(p, Time::ZERO).unwrap();
/// while let Some(t) = net.next_event() { net.advance(t); }
/// let done = net.drain_delivered();
/// // Path setup dominates: tens of ns for a 0.2 ns data flash.
/// assert!(done[0].latency().unwrap().as_ns_f64() > 10.0);
/// ```
pub struct CircuitSwitchedNetwork {
    config: MacrochipConfig,
    /// Directed control links: 4 per site (+x, −x, +y, −y). Setup
    /// messages ride them as bare circuit ids serialized at
    /// [`SETUP_BYTES`] — all routing state lives in [`Self::circuits`].
    ctrl_links: Vec<TxChannel<u64>>,
    out_active: Vec<usize>,
    in_active: Vec<usize>,
    src_wait: Vec<VecDeque<PacketRef>>,
    dst_wait: Vec<VecDeque<u64>>,
    circuits: FxHashMap<u64, Circuit>,
    /// Killed torus segments, stored in both directions (a waveguide cut
    /// takes out the whole segment); setup routing detours around them.
    dead_links: FxHashSet<(usize, usize)>,
    /// Per-hop flight time and setup-message serialization, precomputed
    /// from the same `Layout`/bandwidth math the hot path used to run.
    hop_delay: Span,
    setup_ser: Span,
    /// Memo of the last data-burst serialization computed (same value the
    /// division would produce, cached for the common fixed burst size).
    data_ser_memo: std::cell::Cell<(u32, Span)>,
    slab: PacketSlab,
    gateway_limit: usize,
    batch_limit: usize,
    next_circuit: u64,
    events: EventQueue<Ev>,
    delivered: Vec<Packet>,
    stats: NetStats,
    tracer: Tracer,
}

const DIR_XP: usize = 0;
const DIR_XN: usize = 1;
const DIR_YP: usize = 2;
const DIR_YN: usize = 3;

impl CircuitSwitchedNetwork {
    /// Builds the network for `config` with the default gateway limit.
    pub fn new(config: MacrochipConfig) -> CircuitSwitchedNetwork {
        CircuitSwitchedNetwork::with_gateway_limit(config, MAX_CIRCUITS_PER_GATEWAY)
    }

    /// Builds the network with a custom per-gateway concurrent-circuit
    /// limit (used by the gateway-concurrency ablation).
    ///
    /// # Panics
    ///
    /// Panics if `gateway_limit` is zero.
    pub fn with_gateway_limit(
        config: MacrochipConfig,
        gateway_limit: usize,
    ) -> CircuitSwitchedNetwork {
        CircuitSwitchedNetwork::with_batching(config, gateway_limit, DEFAULT_BATCH)
    }

    /// Builds the network carrying up to `batch_limit` queued same-destination
    /// packets per circuit (the batching ablation; the paper's design is 1).
    ///
    /// # Panics
    ///
    /// Panics if `gateway_limit` or `batch_limit` is zero.
    pub fn with_batching(
        config: MacrochipConfig,
        gateway_limit: usize,
        batch_limit: usize,
    ) -> CircuitSwitchedNetwork {
        config.validate();
        assert!(gateway_limit > 0, "need at least one circuit per gateway");
        assert!(batch_limit > 0, "need at least one packet per circuit");
        let sites = config.grid.sites();
        let ctrl_bw = config.lambda_bytes_per_ns; // one wavelength
        CircuitSwitchedNetwork {
            config,
            // Deep control queues: contention appears as queueing delay.
            ctrl_links: (0..sites * 4)
                .map(|_| TxChannel::new(ctrl_bw, 1024))
                .collect(),
            out_active: vec![0; sites],
            in_active: vec![0; sites],
            src_wait: (0..sites).map(|_| VecDeque::new()).collect(),
            dst_wait: (0..sites).map(|_| VecDeque::new()).collect(),
            circuits: FxHashMap::default(),
            dead_links: FxHashSet::default(),
            hop_delay: config.layout.hop_delay(),
            setup_ser: Span::from_ns_f64(SETUP_BYTES as f64 / config.lambda_bytes_per_ns),
            data_ser_memo: std::cell::Cell::new((
                64,
                Span::from_ns_f64(64.0 / config.channel_bytes_per_ns(LAMBDAS_PER_CIRCUIT)),
            )),
            slab: PacketSlab::new(),
            gateway_limit,
            batch_limit,
            next_circuit: 0,
            events: EventQueue::new(),
            delivered: Vec::with_capacity(256),
            stats: NetStats::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// XY wrap-around routing: the next hop direction from `cur` toward
    /// `dst`, x first. Directions whose segment is killed are skipped in
    /// favour of the same-axis reverse ring, then the other axis; with
    /// every segment dead the preferred direction is returned and the
    /// setup-hop bound eventually abandons the circuit.
    fn next_dir(&self, cur: SiteId, dst: SiteId) -> usize {
        let g = self.config.grid;
        let n = g.side();
        let (cx, cy) = g.coord(cur);
        let (dx, dy) = g.coord(dst);
        let x_fwd = netcore::fast_rem(dx + n - cx, n); // hops going +x
        let (x_best, x_back) = if x_fwd <= n - x_fwd {
            (DIR_XP, DIR_XN)
        } else {
            (DIR_XN, DIR_XP)
        };
        let y_fwd = netcore::fast_rem(dy + n - cy, n);
        let (y_best, y_back) = if y_fwd <= n - y_fwd {
            (DIR_YP, DIR_YN)
        } else {
            (DIR_YN, DIR_YP)
        };
        // Detour preference: the other axis comes before the same-axis
        // reverse ring, which would just lead back to the blocked segment.
        let order = if cx != dx {
            [x_best, y_best, y_back, x_back]
        } else {
            [y_best, x_best, x_back, y_back]
        };
        order
            .into_iter()
            .find(|&dir| self.link_live(cur, self.neighbor(cur, dir)))
            .unwrap_or(order[0])
    }

    /// True when the torus segment between neighbours `a` and `b` is alive.
    fn link_live(&self, a: SiteId, b: SiteId) -> bool {
        !self.dead_links.contains(&(a.index(), b.index()))
    }

    fn neighbor(&self, cur: SiteId, dir: usize) -> SiteId {
        let g = self.config.grid;
        let n = g.side();
        let (x, y) = g.coord(cur);
        let (nx, ny) = match dir {
            DIR_XP => (netcore::fast_rem(x + 1, n), y),
            DIR_XN => (netcore::fast_rem(x + n - 1, n), y),
            DIR_YP => (x, netcore::fast_rem(y + 1, n)),
            DIR_YN => (x, netcore::fast_rem(y + n - 1, n)),
            _ => unreachable!("invalid direction"),
        };
        g.site(nx, ny)
    }

    /// Per-hop control cost excluding serialization: waveguide flight plus
    /// the switch point's processing.
    fn hop_overhead(&self) -> Span {
        self.hop_delay + HOP_PROCESSING
    }

    /// The acknowledgment's return traversal: the circuit's switches are
    /// already set, so the ack is serialized once and flies the reverse
    /// path without per-hop routing.
    fn ack_traverse(&self, hops: usize) -> Span {
        self.setup_ser + self.hop_delay * hops as u64
    }

    fn link_index(&self, site: SiteId, dir: usize) -> usize {
        site.index() * 4 + dir
    }

    /// Sends the circuit's setup message one hop onward from `from`.
    fn forward_setup(&mut self, circuit: u64, from: SiteId, now: Time) {
        let Some(c) = self.circuits.get(&circuit) else {
            return; // abandoned by a fault while the setup was in flight
        };
        let dst = c.dst;
        let dir = self.next_dir(from, dst);
        let link = self.link_index(from, dir);
        self.ctrl_links[link]
            .try_enqueue(circuit, SETUP_BYTES)
            .expect("control queues are effectively unbounded");
        self.pump_ctrl(link, now);
    }

    fn pump_ctrl(&mut self, link: usize, now: Time) {
        let site = SiteId::from_index(link / 4);
        let dir = link % 4;
        if let Some((circuit, finish)) = self.ctrl_links[link].begin_if_ready(now) {
            let next = self.neighbor(site, dir);
            self.events.push(finish, Ev::CtrlTxDone { link });
            self.events.push(
                finish + self.hop_overhead(),
                Ev::SetupArrive { circuit, at: next },
            );
        }
    }

    /// Starts new circuits from `src` while the gateway has capacity.
    fn try_start(&mut self, src: SiteId, now: Time) {
        while self.out_active[src.index()] < self.gateway_limit {
            let Some(head) = self.src_wait[src.index()].pop_front() else {
                return;
            };
            let packet = self.slab.get_mut(head);
            let dst = packet.dst;
            // Leaving the gateway queue starts the setup handshake: the
            // circuit's setup round trip is this network's arbitration.
            packet.arb_start = Some(now);
            let mut packets = vec![head];
            // Batch further queued packets for the same destination onto
            // this circuit (no effect at the paper's batch limit of 1).
            if self.batch_limit > 1 {
                let mut i = 0;
                while i < self.src_wait[src.index()].len() && packets.len() < self.batch_limit {
                    let extra = self.src_wait[src.index()][i];
                    if self.slab.get(extra).dst == dst {
                        self.src_wait[src.index()].remove(i).expect("index checked");
                        self.slab.get_mut(extra).arb_start = Some(now);
                        packets.push(extra);
                    } else {
                        i += 1;
                    }
                }
            }
            let id = self.next_circuit;
            self.next_circuit += 1;
            let hops = self
                .config
                .layout
                .torus_hops(self.config.grid.coord(src), self.config.grid.coord(dst));
            self.circuits.insert(
                id,
                Circuit {
                    src,
                    dst,
                    packets,
                    hops,
                    setup_hops: 0,
                },
            );
            self.out_active[src.index()] += 1;
            self.forward_setup(id, src, now);
        }
    }

    fn on_setup_arrive(&mut self, circuit: u64, at: SiteId, now: Time) {
        let Some(c) = self.circuits.get_mut(&circuit) else {
            return; // abandoned by a fault while the setup was in flight
        };
        let dst = c.dst;
        c.setup_hops += 1;
        // A setup wandering far beyond any healthy path means the fault
        // pattern has cut the destination off: abandon the circuit.
        let lost = at != dst && c.setup_hops > 6 * self.config.grid.side();
        if lost {
            self.abandon_circuit(circuit, at, now);
            return;
        }
        if at == dst {
            if self.in_active[dst.index()] < self.gateway_limit {
                self.grant(circuit, now);
            } else {
                self.dst_wait[dst.index()].push_back(circuit);
            }
        } else {
            self.tracer.emit(now, || TraceEvent::Hop {
                packet: circuit,
                at: at.index(),
            });
            self.forward_setup(circuit, at, now);
        }
    }

    /// Abandons a circuit whose setup cannot reach the destination,
    /// dropping its packets and freeing the source gateway slot.
    fn abandon_circuit(&mut self, circuit: u64, at: SiteId, now: Time) {
        let Some(c) = self.circuits.remove(&circuit) else {
            return;
        };
        for pref in c.packets {
            let p = self.slab.take(pref);
            self.stats.on_drop();
            self.tracer.emit(now, || TraceEvent::Drop {
                packet: p.id.0,
                site: at.index(),
                reason: "setup-lost",
            });
        }
        self.tracer.emit(now, || TraceEvent::CircuitTeardown {
            circuit,
            packets: 0,
        });
        self.out_active[c.src.index()] -= 1;
        self.try_start(c.src, now);
    }

    /// Destination accepts the circuit; the ack flies back to the source.
    fn grant(&mut self, circuit: u64, now: Time) {
        let Some(c) = self.circuits.get(&circuit) else {
            return;
        };
        self.in_active[c.dst.index()] += 1;
        let ack = self.ack_traverse(c.hops);
        self.events.push(now + ack, Ev::AckArrive { circuit });
    }

    fn on_ack(&mut self, circuit: u64, now: Time) {
        let Some(c) = self.circuits.get(&circuit) else {
            return; // abandoned by a fault before the ack came back
        };
        let bytes: u32 = c.packets.iter().map(|&p| self.slab.get(p).bytes).sum();
        let ser = {
            let (memo_bytes, memo_span) = self.data_ser_memo.get();
            if memo_bytes == bytes {
                memo_span
            } else {
                let bw = self.config.channel_bytes_per_ns(LAMBDAS_PER_CIRCUIT);
                let span = Span::from_ns_f64(bytes as f64 / bw);
                self.data_ser_memo.set((bytes, span));
                span
            }
        };
        let (src, dst, hops) = (c.src, c.dst, c.hops);
        for &pref in &c.packets {
            let p = self.slab.get_mut(pref);
            p.tx_start = Some(now);
            p.tx_end = Some(now + ser);
        }
        let flight = self.hop_delay * hops as u64;
        self.tracer.emit(now, || TraceEvent::CircuitSetup {
            circuit,
            src: src.index(),
            dst: dst.index(),
        });
        self.events
            .push(now + ser + flight, Ev::DataDone { circuit });
    }

    fn on_data_done(&mut self, circuit: u64, now: Time) {
        let Some(c) = self.circuits.remove(&circuit) else {
            return; // abandoned by a fault
        };
        // u64: a long-lived circuit must never truncate its carried-packet
        // count — the auditor pairs this against per-packet deliveries.
        let carried = c.packets.len() as u64;
        for pref in &c.packets {
            let mut p = self.slab.take(*pref);
            p.delivered = Some(now);
            self.stats.on_deliver(&p);
            self.tracer.emit(now, || TraceEvent::Deliver {
                packet: p.id.0,
                src: p.src.index(),
                dst: p.dst.index(),
                latency: now.saturating_since(p.created),
            });
            self.delivered.push(p);
        }
        self.tracer.emit(now, || TraceEvent::CircuitTeardown {
            circuit,
            packets: carried,
        });
        // Gateways free immediately; switch teardown proceeds off the
        // critical path (the teardown message follows the same control
        // path but holds no gateway resources).
        self.out_active[c.src.index()] -= 1;
        self.in_active[c.dst.index()] -= 1;
        self.try_start(c.src, now);
        if let Some(waiting) = self.dst_wait[c.dst.index()].pop_front() {
            self.grant(waiting, now);
        }
    }
}

impl Network for CircuitSwitchedNetwork {
    fn kind(&self) -> NetworkKind {
        NetworkKind::CircuitSwitched
    }

    fn config(&self) -> &MacrochipConfig {
        &self.config
    }

    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet> {
        if packet.src == packet.dst {
            let mut packet = packet;
            packet.arb_start = Some(now);
            packet.tx_start = Some(now);
            packet.tx_end = Some(now);
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: packet.id.0,
                src: packet.src.index(),
                dst: packet.dst.index(),
                bytes: packet.bytes,
            });
            let pref = self.slab.insert(packet);
            self.events
                .push(now + self.config.cycle(), Ev::Deliver { packet: pref });
            self.stats.on_inject(now);
            return Ok(());
        }
        if self.src_wait[packet.src.index()].len() >= self.config.queue_capacity * 4 {
            self.stats.on_reject();
            return Err(packet);
        }
        let src = packet.src;
        self.tracer.emit(now, || TraceEvent::Inject {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            bytes: packet.bytes,
        });
        let pref = self.slab.insert(packet);
        self.src_wait[src.index()].push_back(pref);
        self.stats.on_inject(now);
        self.try_start(src, now);
        Ok(())
    }

    fn next_event(&self) -> Option<Time> {
        self.events.peek_time()
    }

    fn advance(&mut self, now: Time) {
        while let Some((t, ev)) = self.events.pop_due(now) {
            match ev {
                Ev::CtrlTxDone { link } => self.pump_ctrl(link, t),
                Ev::SetupArrive { circuit, at } => self.on_setup_arrive(circuit, at, t),
                Ev::AckArrive { circuit } => self.on_ack(circuit, t),
                Ev::DataDone { circuit } => self.on_data_done(circuit, t),
                Ev::Deliver { packet } => {
                    let mut packet = self.slab.take(packet);
                    packet.delivered = Some(t);
                    self.stats.on_deliver(&packet);
                    self.tracer.emit(t, || TraceEvent::Deliver {
                        packet: packet.id.0,
                        src: packet.src.index(),
                        dst: packet.dst.index(),
                        latency: t.saturating_since(packet.created),
                    });
                    self.delivered.push(packet);
                }
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.delivered)
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.delivered);
    }

    fn last_event_time(&self) -> Option<Time> {
        self.events.last_popped()
    }

    fn supports_batched_advance(&self) -> bool {
        true
    }

    fn slab_stats(&self) -> Option<SlabStats> {
        Some(self.slab.stats())
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Degradation policy: path re-setup around killed segments. Setup
    /// messages recompute their route at every switch point, so marking a
    /// segment dead diverts all subsequent setups; in-flight circuits
    /// complete optimistically (their switches are already configured).
    /// Laser loss halves the affected site's control-network bandwidth,
    /// slowing every setup it sources.
    fn apply_fault(&mut self, fault: NetFault, _now: Time) -> FaultResponse {
        match fault {
            NetFault::LinkKill { src, dst } => {
                self.dead_links.insert((src.index(), dst.index()));
                self.dead_links.insert((dst.index(), src.index()));
                FaultResponse::handled("re-setup")
            }
            NetFault::LinkRepair { src, dst } => {
                self.dead_links.remove(&(src.index(), dst.index()));
                self.dead_links.remove(&(dst.index(), src.index()));
                FaultResponse::handled("direct-route")
            }
            NetFault::LaserLoss { site } => {
                for dir in 0..4 {
                    self.ctrl_links[site.index() * 4 + dir]
                        .set_bytes_per_ns(self.config.lambda_bytes_per_ns * 0.5);
                }
                FaultResponse::handled("half-control-bandwidth")
            }
            NetFault::LaserRestore { site } => {
                for dir in 0..4 {
                    self.ctrl_links[site.index() * 4 + dir]
                        .set_bytes_per_ns(self.config.lambda_bytes_per_ns);
                }
                FaultResponse::handled("full-control-bandwidth")
            }
            NetFault::SiteKill { .. } => FaultResponse::unhandled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{MessageKind, PacketId};

    fn net() -> CircuitSwitchedNetwork {
        CircuitSwitchedNetwork::new(MacrochipConfig::scaled())
    }

    fn data(id: u64, src: SiteId, dst: SiteId, at: Time) -> Packet {
        Packet::new(PacketId(id), src, dst, 64, MessageKind::Data, at)
    }

    fn run_until_idle(net: &mut CircuitSwitchedNetwork) {
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
    }

    #[test]
    fn setup_round_trip_dominates_small_transfers() {
        let mut n = net();
        let g = n.config.grid;
        n.inject(data(0, g.site(0, 0), g.site(4, 4), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        let lat = done[0].latency().unwrap().as_ns_f64();
        // 8 setup hops at ~15 ns/hop, an express ack, and 0.2 ns of data:
        // the control round trip is ~600x the data time.
        assert!(lat > 120.0 && lat < 160.0, "latency {lat}");
    }

    #[test]
    fn adjacent_sites_set_up_faster() {
        let mut n = net();
        let g = n.config.grid;
        n.inject(data(0, g.site(0, 0), g.site(1, 0), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let lat = n.drain_delivered()[0].latency().unwrap().as_ns_f64();
        // One setup hop + express ack: a fraction of the cross-chip cost.
        assert!(lat < 35.0, "latency {lat}");
    }

    #[test]
    fn torus_wraps_for_setup_routing() {
        let n = net();
        let g = n.config.grid;
        // (0,0) -> (7,0): one hop in -x with wrap, not seven in +x.
        assert_eq!(n.next_dir(g.site(0, 0), g.site(7, 0)), DIR_XN);
        assert_eq!(n.neighbor(g.site(0, 0), DIR_XN), g.site(7, 0));
    }

    #[test]
    fn gateway_limits_concurrent_circuits() {
        let mut n = net();
        let g = n.config.grid;
        let src = g.site(0, 0);
        // More packets than the gateway's 16 sourced waveguides.
        for i in 0..24usize {
            n.inject(
                data(i as u64, src, g.site(i % 6 + 1, i / 6 + 1), Time::ZERO),
                Time::ZERO,
            )
            .unwrap();
        }
        assert_eq!(n.out_active[src.index()], MAX_CIRCUITS_PER_GATEWAY);
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 24);
        assert_eq!(n.out_active[src.index()], 0);
    }

    #[test]
    fn destination_admission_queues_excess_setups() {
        let mut n = net();
        let g = n.config.grid;
        let dst = g.site(4, 4);
        // More sources than the destination gateway accepts at once.
        for i in 0..8usize {
            n.inject(
                data(i as u64, g.site(i % 8, 0), dst, Time::ZERO),
                Time::ZERO,
            )
            .unwrap();
        }
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 8);
        assert_eq!(n.in_active[dst.index()], 0);
        assert!(n.dst_wait[dst.index()].is_empty());
    }

    #[test]
    fn control_link_contention_slows_setup() {
        let mut n = net();
        let g = n.config.grid;
        // Many circuits from one source share its +x control link.
        for i in 0..4usize {
            n.inject(
                data(i as u64, g.site(0, 0), g.site(3, i), Time::ZERO),
                Time::ZERO,
            )
            .unwrap();
        }
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        let mut latencies: Vec<f64> = done
            .iter()
            .map(|p| p.latency().unwrap().as_ns_f64())
            .collect();
        latencies.sort_by(f64::total_cmp);
        // Later setups queued behind earlier serializations.
        assert!(latencies[3] > latencies[0] + 3.0);
    }

    #[test]
    fn batching_carries_multiple_packets_per_circuit() {
        let mut n = CircuitSwitchedNetwork::with_batching(MacrochipConfig::scaled(), 1, 4);
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(3, 3));
        // Five same-destination packets, one gateway slot: the first
        // circuit takes the head packet; the next takes a batch of four.
        for i in 0..5u64 {
            n.inject(data(i, a, b, Time::ZERO), Time::ZERO).unwrap();
        }
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 5);
        // Batched packets share a delivery instant.
        let mut times: Vec<Time> = done.iter().map(|p| p.delivered.unwrap()).collect();
        times.sort_unstable();
        times.dedup();
        assert_eq!(times.len(), 2, "expected exactly two circuits");
    }

    #[test]
    fn batching_skips_other_destinations() {
        let mut n = CircuitSwitchedNetwork::with_batching(MacrochipConfig::scaled(), 1, 8);
        let g = n.config.grid;
        let a = g.site(0, 0);
        // Packet 9 occupies the single gateway slot first, so the rest
        // queue up and batching can see them together.
        n.inject(data(9, a, g.site(5, 5), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(0, a, g.site(3, 3), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, a, g.site(4, 4), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(2, a, g.site(3, 3), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 4);
        // Packets 0 and 2 ride one circuit; packet 1 gets its own.
        let t0 = done.iter().find(|p| p.id == PacketId(0)).unwrap().delivered;
        let t1 = done.iter().find(|p| p.id == PacketId(1)).unwrap().delivered;
        let t2 = done.iter().find(|p| p.id == PacketId(2)).unwrap().delivered;
        assert_eq!(t0, t2);
        assert_ne!(t0, t1);
    }

    #[test]
    fn killed_segment_diverts_the_setup_path() {
        let mut n = net();
        let g = n.config.grid;
        let (src, dst) = (g.site(0, 0), g.site(1, 0));
        // Kill the direct segment; XY routing must detour.
        let r = n.apply_fault(NetFault::LinkKill { src, dst }, Time::ZERO);
        assert!(r.handled);
        assert_eq!(r.action, "re-setup");
        assert_ne!(n.neighbor(src, n.next_dir(src, dst)), dst);
        n.inject(data(0, src, dst, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 1);
        // The detoured setup is slower than the healthy single hop.
        assert!(done[0].latency().unwrap().as_ns_f64() > 35.0);
        assert_eq!(n.stats().dropped_packets(), 0);
    }

    #[test]
    fn unroutable_destination_abandons_the_circuit() {
        let mut n = net();
        let g = n.config.grid;
        let dst = g.site(4, 4);
        // Cut every segment touching the destination.
        for dir in 0..4 {
            let peer = n.neighbor(dst, dir);
            n.apply_fault(
                NetFault::LinkKill {
                    src: dst,
                    dst: peer,
                },
                Time::ZERO,
            );
        }
        n.inject(data(0, g.site(0, 0), dst, Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        assert!(n.drain_delivered().is_empty());
        assert_eq!(n.stats().dropped_packets(), 1);
        // The gateway slot came back, so later circuits still start.
        assert_eq!(n.out_active[g.site(0, 0).index()], 0);
    }

    #[test]
    fn repaired_segment_restores_direct_setup() {
        let mut n = net();
        let g = n.config.grid;
        let (src, dst) = (g.site(0, 0), g.site(1, 0));
        n.apply_fault(NetFault::LinkKill { src, dst }, Time::ZERO);
        n.apply_fault(NetFault::LinkRepair { src, dst }, Time::ZERO);
        assert_eq!(n.neighbor(src, n.next_dir(src, dst)), dst);
    }

    #[test]
    fn loopback_takes_one_cycle() {
        let mut n = net();
        let s = n.config.grid.site(5, 5);
        n.inject(data(0, s, s, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        assert_eq!(
            n.drain_delivered()[0].latency().unwrap(),
            Span::from_ps(200)
        );
    }

    #[test]
    fn deep_injection_queue_eventually_backpressures() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 1));
        let cap = n.config.queue_capacity * 4;
        let mut accepted = 0;
        for i in 0..(cap as u64 + MAX_CIRCUITS_PER_GATEWAY as u64 + 4) {
            if n.inject(data(i, a, b, Time::ZERO), Time::ZERO).is_ok() {
                accepted += 1;
            }
        }
        assert!(n.stats().rejected_packets() > 0);
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), accepted);
    }
}
