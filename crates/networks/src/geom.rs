//! Precomputed geometry for the per-event hot paths.
//!
//! The row-then-column propagation delay depends only on the Manhattan
//! hop count between two sites, and a grid has at most `2 * (side - 1)`
//! hops — so the float multiply-and-round in [`Layout::prop_delay`] can
//! be done once per hop count at construction. Each table entry is
//! produced by the same `Layout` call the hot path used to make, so the
//! cached spans are bit-identical to the on-demand values.

use desim::Span;
use photonics::geometry::{Coord, Layout};

/// Propagation delays of the row-then-column waveguide path, indexed by
/// Manhattan hop count.
#[derive(Debug, Clone)]
pub(crate) struct PropByHops(Vec<Span>);

impl PropByHops {
    pub(crate) fn new(layout: &Layout) -> PropByHops {
        let side = layout.side();
        PropByHops(
            (0..=2 * (side - 1))
                .map(|hops| {
                    // Split `hops` over two in-grid coordinates; the delay
                    // depends only on the sum.
                    let dx = hops.min(side - 1);
                    layout.prop_delay((dx, hops - dx), (0, 0))
                })
                .collect(),
        )
    }

    /// Equivalent of `layout.prop_delay(src, dst)`.
    #[inline]
    pub(crate) fn delay(&self, src: Coord, dst: Coord) -> Span {
        self.0[src.0.abs_diff(dst.0) + src.1.abs_diff(dst.1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_layout_for_every_pair() {
        // Power-of-two and odd side lengths, paper pitch and a custom one.
        for layout in [
            Layout::macrochip(),
            Layout::new(4, 2.5, 0.1),
            Layout::new(11, 1.75, 0.1),
            Layout::new(16, 2.5, 0.1),
        ] {
            let side = layout.side();
            let table = PropByHops::new(&layout);
            for sx in 0..side {
                for sy in 0..side {
                    for dx in 0..side {
                        for dy in 0..side {
                            assert_eq!(
                                table.delay((sx, sy), (dx, dy)),
                                layout.prop_delay((sx, sy), (dx, dy)),
                            );
                        }
                    }
                }
            }
        }
    }
}
