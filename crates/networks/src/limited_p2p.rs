//! The limited point-to-point network with electronic routing (paper §4.6).
//!
//! Each site has a dedicated 20 GB/s (8-wavelength) optical channel to
//! every *row peer* and *column peer* — the 14 sites sharing its row or
//! column. Packets for any other site are forwarded through the one site
//! that is a row peer of the source and a column peer of the destination:
//! there the packet is converted to the electronic domain, crosses a 7×7
//! router (one cycle), and is re-sent optically. Every transmission thus
//! needs at most one intermediate O-E/E-O conversion.
//!
//! Forwarded bytes are tagged on the packet (`routed_bytes`) so the energy
//! model can charge the paper's conservative 60 pJ/byte router energy
//! (§6.3, Figure 9).

use desim::{EventQueue, Time, TraceEvent, Tracer};
use netcore::{
    FaultResponse, MacrochipConfig, NetFault, NetStats, Network, NetworkKind, Packet, PacketRef,
    PacketSlab, SiteId, SlabStats, TxChannel,
};

/// Wavelengths per peer channel (8 × 2.5 GB/s = 20 GB/s).
pub const LAMBDAS_PER_CHANNEL: usize = 8;

/// Cost of the intermediate electronic hop: O-E conversion and clock
/// recovery on 8 parallel wavelength lanes, elastic-buffer
/// resynchronization into the router's domain, the router cycle itself,
/// and E-O remodulation. The router crossing proper is one cycle (§4.6);
/// the conversions around it dominate. This is what keeps the limited
/// point-to-point network behind the pure point-to-point design on
/// forwarded traffic despite its 4x wider channels (paper §6.2).
pub const FORWARD_CONVERSION: desim::Span = desim::Span::from_ps(10_000);

/// Which intermediate site forwards non-peer traffic. The paper's design
/// has one router per direction pair at each site; the forwarder for
/// (src, dst) can be the source's row peer in the destination's column
/// (row-first), the source's column peer in the destination's row
/// (column-first), or whichever of the two currently has the shorter
/// first-hop queue (adaptive — an extension beyond the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Row link first, then the forwarder's column link (paper default).
    #[default]
    RowFirst,
    /// Column link first, then the forwarder's row link.
    ColumnFirst,
    /// Pick the first hop with the shorter queue; ties go row-first.
    Adaptive,
}

#[derive(Debug)]
enum Ev {
    /// A channel finished serializing; start its next packet.
    TxDone { channel: usize },
    /// A packet arrived at a site: the final destination or the forwarder.
    Arrive { packet: PacketRef, at_site: SiteId },
    /// The router at `at` processed the packet; enqueue the second hop.
    Forward { packet: PacketRef, at: SiteId },
}

/// The limited point-to-point network.
///
/// # Example
///
/// ```
/// use desim::Time;
/// use netcore::{MacrochipConfig, MessageKind, Network, Packet, PacketId};
/// use networks::LimitedP2pNetwork;
///
/// let config = MacrochipConfig::scaled();
/// let mut net = LimitedP2pNetwork::new(config);
/// // Non-peer sites: (0,0) -> (3,5) forwards through (3,0).
/// let p = Packet::new(PacketId(0), config.grid.site(0, 0), config.grid.site(3, 5),
///                     64, MessageKind::Data, Time::ZERO);
/// net.inject(p, Time::ZERO).unwrap();
/// while let Some(t) = net.next_event() { net.advance(t); }
/// let done = net.drain_delivered();
/// assert_eq!(done[0].routed_bytes, 64); // crossed one electronic router
/// ```
pub struct LimitedP2pNetwork {
    config: MacrochipConfig,
    policy: RoutingPolicy,
    /// Dense S×S map; `None` where no direct channel exists.
    channels: Vec<Option<TxChannel<PacketRef>>>,
    prop: crate::geom::PropByHops,
    slab: PacketSlab,
    /// Dense S×S map of killed links (same indexing as `channels`).
    dead: Vec<bool>,
    events: EventQueue<Ev>,
    delivered: Vec<Packet>,
    stats: NetStats,
    tracer: Tracer,
}

impl LimitedP2pNetwork {
    /// Builds the network with the paper's row-first routing.
    pub fn new(config: MacrochipConfig) -> LimitedP2pNetwork {
        LimitedP2pNetwork::with_policy(config, RoutingPolicy::RowFirst)
    }

    /// Builds the network with a custom forwarding policy (used by the
    /// routing-policy ablation).
    pub fn with_policy(config: MacrochipConfig, policy: RoutingPolicy) -> LimitedP2pNetwork {
        config.validate();
        let sites = config.grid.sites();
        let bw = config.channel_bytes_per_ns(LAMBDAS_PER_CHANNEL);
        let mut channels = Vec::with_capacity(sites * sites);
        for s in 0..sites {
            for d in 0..sites {
                let (s, d) = (SiteId::from_index(s), SiteId::from_index(d));
                channels.push(if config.grid.are_peers(s, d) {
                    Some(TxChannel::new(bw, config.queue_capacity))
                } else {
                    None
                });
            }
        }
        LimitedP2pNetwork {
            config,
            policy,
            dead: vec![false; channels.len()],
            channels,
            prop: crate::geom::PropByHops::new(&config.layout),
            slab: PacketSlab::new(),
            events: EventQueue::new(),
            delivered: Vec::with_capacity(256),
            stats: NetStats::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// The forwarding site for a non-peer pair under the current policy.
    pub fn forwarder(&self, src: SiteId, dst: SiteId) -> SiteId {
        let g = self.config.grid;
        let row_first = g.site(g.x(dst), g.y(src));
        let col_first = g.site(g.x(src), g.y(dst));
        match self.policy {
            RoutingPolicy::RowFirst => row_first,
            RoutingPolicy::ColumnFirst => col_first,
            RoutingPolicy::Adaptive => {
                let q = |hop: SiteId| {
                    self.channels[self.channel_index(src, hop)]
                        .as_ref()
                        .expect("first hops are peers")
                        .queued()
                };
                if q(col_first) < q(row_first) {
                    col_first
                } else {
                    row_first
                }
            }
        }
    }

    fn channel_index(&self, src: SiteId, dst: SiteId) -> usize {
        src.index() * self.config.grid.sites() + dst.index()
    }

    /// True when a direct optical channel `a -> b` exists and is alive.
    fn live(&self, a: SiteId, b: SiteId) -> bool {
        let idx = self.channel_index(a, b);
        self.channels[idx].is_some() && !self.dead[idx]
    }

    /// The first optical hop toward `dst`, routing electronically around
    /// any killed links; `None` when every detour is dead too.
    fn route_first_hop(&self, src: SiteId, dst: SiteId) -> Option<SiteId> {
        let g = self.config.grid;
        if g.are_peers(src, dst) {
            if self.live(src, dst) {
                return Some(dst);
            }
            // Direct peer link dead: detour through another site on the
            // shared row or column, which is a peer of both ends.
            let shared_row = g.y(src) == g.y(dst);
            return (0..g.side())
                .map(|i| {
                    if shared_row {
                        g.site(i, g.y(src))
                    } else {
                        g.site(g.x(src), i)
                    }
                })
                .find(|&f| f != src && f != dst && self.live(src, f) && self.live(f, dst));
        }
        // Non-peer pair: prefer the policy's corner, fall back to the
        // opposite corner when a leg through it is dead.
        let preferred = self.forwarder(src, dst);
        let row_first = g.site(g.x(dst), g.y(src));
        let col_first = g.site(g.x(src), g.y(dst));
        let fallback = if preferred == row_first {
            col_first
        } else {
            row_first
        };
        [preferred, fallback]
            .into_iter()
            .find(|&f| self.live(src, f) && self.live(f, dst))
    }

    fn drop_packet(&mut self, packet: Packet, at: SiteId, now: Time) {
        self.stats.on_drop();
        self.tracer.emit(now, || TraceEvent::Drop {
            packet: packet.id.0,
            site: at.index(),
            reason: "no-route",
        });
    }

    fn pump(&mut self, channel: usize, now: Time) {
        let sites = self.config.grid.sites();
        let src = SiteId::from_index(channel / sites);
        let hop_dst = SiteId::from_index(channel % sites);
        let Some(ch) = self.channels[channel].as_mut() else {
            return;
        };
        if let Some((pref, finish)) = ch.begin_if_ready(now) {
            let packet = self.slab.get_mut(pref);
            if hop_dst == packet.dst {
                // Final optical hop: the wire portion of the trip starts.
                // No arbitration exists here, so the phase is zero-width;
                // any earlier hop and conversion time counts as queueing.
                packet.arb_start = Some(now);
                packet.tx_start = Some(now);
                packet.tx_end = Some(finish);
            }
            let prop = self
                .prop
                .delay(self.config.grid.coord(src), self.config.grid.coord(hop_dst));
            self.events.push(finish, Ev::TxDone { channel });
            self.events.push(
                finish + prop,
                Ev::Arrive {
                    packet: pref,
                    at_site: hop_dst,
                },
            );
        }
    }

    fn on_arrive(&mut self, packet: PacketRef, at_site: SiteId, t: Time) {
        if at_site == self.slab.get(packet).dst {
            self.deliver(packet, t);
        } else {
            // Intermediate hop: O-E/E-O conversion plus the one-cycle
            // electronic router (§4.6).
            self.events.push(
                t + FORWARD_CONVERSION,
                Ev::Forward {
                    packet,
                    at: at_site,
                },
            );
        }
    }

    fn on_forward(&mut self, pref: PacketRef, at: SiteId, t: Time) {
        // Route from the router toward the destination; in the healthy
        // network this is always the direct peer channel `at -> dst`, but
        // a killed link diverts through a further electronic hop.
        let Some(hop) = self.route_first_hop(at, self.slab.get(pref).dst) else {
            let packet = self.slab.take(pref);
            self.drop_packet(packet, at, t);
            return;
        };
        let packet = self.slab.get_mut(pref);
        packet.routed_bytes = packet.routed_bytes.saturating_add(packet.bytes);
        let (id, bytes) = (packet.id.0, packet.bytes);
        self.tracer.emit(t, || TraceEvent::Hop {
            packet: id,
            at: at.index(),
        });
        let idx = self.channel_index(at, hop);
        let retry_at = {
            let ch = self.channels[idx]
                .as_mut()
                .expect("routed hops follow existing channels");
            match ch.try_enqueue(pref, bytes) {
                Ok(()) => None,
                // Output buffer full: the router holds the packet and
                // retries when the channel frees a slot.
                Err(p) => Some((ch.busy_until().max(t + self.config.cycle()), p)),
            }
        };
        match retry_at {
            None => self.pump(idx, t),
            Some((when, p)) => self.events.push(when, Ev::Forward { packet: p, at }),
        }
    }

    fn deliver(&mut self, pref: PacketRef, at: Time) {
        let mut packet = self.slab.take(pref);
        packet.delivered = Some(at);
        self.stats.on_deliver(&packet);
        self.tracer.emit(at, || TraceEvent::Deliver {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            latency: at.saturating_since(packet.created),
        });
        self.delivered.push(packet);
    }
}

impl Network for LimitedP2pNetwork {
    fn kind(&self) -> NetworkKind {
        NetworkKind::LimitedPointToPoint
    }

    fn config(&self) -> &MacrochipConfig {
        &self.config
    }

    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet> {
        if packet.src == packet.dst {
            let mut packet = packet;
            packet.arb_start = Some(now);
            packet.tx_start = Some(now);
            packet.tx_end = Some(now);
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: packet.id.0,
                src: packet.src.index(),
                dst: packet.dst.index(),
                bytes: packet.bytes,
            });
            let at_site = packet.dst;
            let pref = self.slab.insert(packet);
            self.events.push(
                now + self.config.cycle(),
                Ev::Arrive {
                    at_site,
                    packet: pref,
                },
            );
            self.stats.on_inject(now);
            return Ok(());
        }
        let Some(first_hop) = self.route_first_hop(packet.src, packet.dst) else {
            // Every route is dead: absorb the packet as a fault drop so
            // the driver does not retry forever against a dead path.
            self.stats.on_inject(now);
            self.drop_packet(packet, packet.src, now);
            return Ok(());
        };
        let idx = self.channel_index(packet.src, first_hop);
        // Fast path: skip extracting trace fields (the packet is moved
        // into the queue below) unless the flight recorder is attached.
        let trace_fields = self.tracer.is_enabled().then(|| {
            (
                packet.id.0,
                packet.src.index(),
                packet.dst.index(),
                packet.bytes,
            )
        });
        let ch = self.channels[idx]
            .as_mut()
            .expect("first hop is always a peer of the source");
        if ch.is_full() {
            self.stats.on_reject();
            return Err(packet);
        }
        let bytes = packet.bytes;
        let pref = self.slab.insert(packet);
        self.channels[idx]
            .as_mut()
            .expect("first hop is always a peer of the source")
            .try_enqueue(pref, bytes)
            .expect("checked not full");
        self.stats.on_inject(now);
        if let Some((id, src, dst, bytes)) = trace_fields {
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: id,
                src,
                dst,
                bytes,
            });
        }
        self.pump(idx, now);
        Ok(())
    }

    fn next_event(&self) -> Option<Time> {
        self.events.peek_time()
    }

    fn advance(&mut self, now: Time) {
        while let Some((t, ev)) = self.events.pop_due(now) {
            match ev {
                Ev::TxDone { channel } => self.pump(channel, t),
                Ev::Arrive { packet, at_site } => self.on_arrive(packet, at_site, t),
                Ev::Forward { packet, at } => self.on_forward(packet, at, t),
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.delivered)
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.delivered);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    fn last_event_time(&self) -> Option<Time> {
        self.events.last_popped()
    }

    fn supports_batched_advance(&self) -> bool {
        true
    }

    fn slab_stats(&self) -> Option<SlabStats> {
        Some(self.slab.stats())
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Degradation policy: electronic re-route around killed links. A
    /// killed peer link evicts its queued packets (the wrapper retries
    /// them) and subsequent traffic detours through a live forwarder;
    /// laser loss halves the affected site's outgoing channel bandwidth.
    fn apply_fault(&mut self, fault: NetFault, _now: Time) -> FaultResponse {
        let sites = self.config.grid.sites();
        let full = self.config.channel_bytes_per_ns(LAMBDAS_PER_CHANNEL);
        let spare = self.config.channel_bytes_per_ns(LAMBDAS_PER_CHANNEL / 2);
        match fault {
            NetFault::LinkKill { src, dst } => {
                let idx = self.channel_index(src, dst);
                let Some(ch) = self.channels[idx].as_mut() else {
                    return FaultResponse::unhandled();
                };
                self.dead[idx] = true;
                let refs = ch.drain_queue();
                let evicted = refs.into_iter().map(|r| self.slab.take(r)).collect();
                FaultResponse::handled("reroute").with_evicted(evicted)
            }
            NetFault::LinkRepair { src, dst } => {
                let idx = self.channel_index(src, dst);
                if self.channels[idx].is_none() {
                    return FaultResponse::unhandled();
                }
                self.dead[idx] = false;
                FaultResponse::handled("direct-route")
            }
            NetFault::LaserLoss { site } => {
                for d in 0..sites {
                    if let Some(ch) = self.channels[site.index() * sites + d].as_mut() {
                        ch.set_bytes_per_ns(spare);
                    }
                }
                FaultResponse::handled("half-bandwidth")
            }
            NetFault::LaserRestore { site } => {
                for d in 0..sites {
                    if let Some(ch) = self.channels[site.index() * sites + d].as_mut() {
                        ch.set_bytes_per_ns(full);
                    }
                }
                FaultResponse::handled("full-bandwidth")
            }
            NetFault::SiteKill { .. } => FaultResponse::unhandled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Span;
    use netcore::{MessageKind, PacketId};

    fn net() -> LimitedP2pNetwork {
        LimitedP2pNetwork::new(MacrochipConfig::scaled())
    }

    fn data(id: u64, src: SiteId, dst: SiteId, at: Time) -> Packet {
        Packet::new(PacketId(id), src, dst, 64, MessageKind::Data, at)
    }

    fn run_until_idle(net: &mut LimitedP2pNetwork) {
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
    }

    #[test]
    fn peer_transfer_is_direct_and_fast() {
        let mut n = net();
        let g = n.config.grid;
        n.inject(data(0, g.site(0, 0), g.site(5, 0), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        // 64 B at 20 B/ns = 3.2 ns + 5 hops * 0.25 ns flight.
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(4.45));
        assert_eq!(done[0].routed_bytes, 0);
    }

    #[test]
    fn non_peer_transfer_uses_one_router_hop() {
        let mut n = net();
        let g = n.config.grid;
        let (src, dst) = (g.site(0, 0), g.site(3, 5));
        assert!(!g.are_peers(src, dst));
        n.inject(data(0, src, dst, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].routed_bytes, 64);
        // hop1: 3.2 + 0.75; conversions + router 10; hop2: 3.2 + 1.25.
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(18.4));
    }

    #[test]
    fn forwarder_is_row_peer_of_src_and_col_peer_of_dst() {
        let n = net();
        let g = n.config.grid;
        let f = n.forwarder(g.site(1, 2), g.site(6, 7));
        assert_eq!(g.coord(f), (6, 2));
    }

    #[test]
    fn forwarded_traffic_contends_with_native_traffic() {
        let mut n = net();
        let g = n.config.grid;
        // Forwarder for (0,0)->(1,1) is (1,0). Saturate channel (1,0)->(1,1)
        // with the forwarder's own traffic, then forward through it.
        let fwd = g.site(1, 0);
        let dst = g.site(1, 1);
        for i in 0..4u64 {
            n.inject(data(i, fwd, dst, Time::ZERO), Time::ZERO).unwrap();
        }
        n.inject(data(99, g.site(0, 0), dst, Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 5);
        let routed = done.iter().find(|p| p.id == PacketId(99)).unwrap();
        // It queued behind four native 3.2 ns transmissions.
        assert!(
            routed.latency().unwrap() > Span::from_ns_f64(16.0),
            "latency {}",
            routed.latency().unwrap()
        );
    }

    #[test]
    fn nearest_neighbor_traffic_never_routes() {
        let mut n = net();
        let g = n.config.grid;
        // All four neighbors of (3,3) are peers.
        let c = g.site(3, 3);
        for (i, d) in [(2usize, 3usize), (4, 3), (3, 2), (3, 4)]
            .iter()
            .enumerate()
        {
            n.inject(data(i as u64, c, g.site(d.0, d.1), Time::ZERO), Time::ZERO)
                .unwrap();
        }
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|p| p.routed_bytes == 0));
        assert_eq!(n.stats().routed_bytes(), 0);
    }

    #[test]
    fn loopback_takes_one_cycle() {
        let mut n = net();
        let s = n.config.grid.site(4, 4);
        n.inject(data(0, s, s, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        assert_eq!(
            n.drain_delivered()[0].latency().unwrap(),
            Span::from_ps(200)
        );
    }

    #[test]
    fn router_bytes_feed_stats() {
        let mut n = net();
        let g = n.config.grid;
        n.inject(data(0, g.site(0, 0), g.site(7, 7), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        n.drain_delivered();
        assert_eq!(n.stats().routed_bytes(), 64);
    }

    #[test]
    fn column_first_policy_routes_through_the_other_corner() {
        let n =
            LimitedP2pNetwork::with_policy(MacrochipConfig::scaled(), RoutingPolicy::ColumnFirst);
        let g = n.config.grid;
        let f = n.forwarder(g.site(1, 2), g.site(6, 7));
        assert_eq!(g.coord(f), (1, 7));
    }

    #[test]
    fn adaptive_policy_avoids_the_congested_first_hop() {
        let mut n =
            LimitedP2pNetwork::with_policy(MacrochipConfig::scaled(), RoutingPolicy::Adaptive);
        let g = n.config.grid;
        let (src, dst) = (g.site(0, 0), g.site(3, 5));
        // Congest the row-first hop (0,0) -> (3,0) with direct traffic.
        for i in 0..6u64 {
            n.inject(data(100 + i, src, g.site(3, 0), Time::ZERO), Time::ZERO)
                .unwrap();
        }
        // The adaptive forwarder now prefers the column-first corner.
        assert_eq!(g.coord(n.forwarder(src, dst)), (0, 5));
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 6);
    }

    #[test]
    fn all_policies_deliver_non_peer_traffic() {
        for policy in [
            RoutingPolicy::RowFirst,
            RoutingPolicy::ColumnFirst,
            RoutingPolicy::Adaptive,
        ] {
            let mut n = LimitedP2pNetwork::with_policy(MacrochipConfig::scaled(), policy);
            let g = n.config.grid;
            n.inject(data(0, g.site(0, 0), g.site(7, 7), Time::ZERO), Time::ZERO)
                .unwrap();
            run_until_idle(&mut n);
            let done = n.drain_delivered();
            assert_eq!(done.len(), 1, "{policy:?}");
            assert_eq!(done[0].routed_bytes, 64, "{policy:?}");
        }
    }

    #[test]
    fn killed_peer_link_detours_electronically() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(5, 0));
        let r = n.apply_fault(NetFault::LinkKill { src: a, dst: b }, Time::ZERO);
        assert!(r.handled);
        assert_eq!(r.action, "reroute");
        n.inject(data(0, a, b, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 1);
        // The detour crosses an electronic router, unlike the direct link.
        assert_eq!(done[0].routed_bytes, 64);
        assert!(done[0].latency().unwrap() > Span::from_ns_f64(10.0));
    }

    #[test]
    fn killed_forwarder_leg_uses_the_other_corner() {
        let mut n = net();
        let g = n.config.grid;
        let (src, dst) = (g.site(0, 0), g.site(3, 5));
        // Kill the row-first corner's first leg; traffic must route via
        // the column-first corner (0,5).
        n.apply_fault(
            NetFault::LinkKill {
                src,
                dst: g.site(3, 0),
            },
            Time::ZERO,
        );
        assert_eq!(g.coord(n.route_first_hop(src, dst).unwrap()), (0, 5));
        n.inject(data(0, src, dst, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 1);
    }

    #[test]
    fn repair_restores_the_direct_route() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(5, 0));
        n.apply_fault(NetFault::LinkKill { src: a, dst: b }, Time::ZERO);
        n.apply_fault(NetFault::LinkRepair { src: a, dst: b }, Time::ZERO);
        assert_eq!(n.route_first_hop(a, b), Some(b));
    }

    #[test]
    fn killed_link_evicts_queued_packets() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 0));
        for i in 0..4u64 {
            n.inject(data(i, a, b, Time::ZERO), Time::ZERO).unwrap();
        }
        let r = n.apply_fault(NetFault::LinkKill { src: a, dst: b }, Time::ZERO);
        // One packet is already in flight; the rest were queued.
        assert_eq!(r.evicted.len(), 3);
    }

    #[test]
    fn full_first_hop_queue_backpressures() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 0));
        let cap = n.config.queue_capacity;
        for i in 0..=cap as u64 {
            n.inject(data(i, a, b, Time::ZERO), Time::ZERO).unwrap();
        }
        assert!(n.inject(data(99, a, b, Time::ZERO), Time::ZERO).is_err());
    }
}
