//! The five macrochip inter-site network architectures (paper §4).
//!
//! Each module implements one architecture as an event-driven model behind
//! the [`netcore::Network`] trait:
//!
//! * [`p2p`] — statically WDM-routed point-to-point (§4.2): 63 dedicated
//!   5 GB/s channels per site, no arbitration, no switching;
//! * [`two_phase`] — two-phase arbitration-based switched network (§4.3):
//!   512 shared 40 GB/s row-to-site channels, distributed slotted
//!   arbitration, source-side switch trees (base and ALT variants);
//! * [`token_ring`] — Corona-style token-ring optical crossbar adapted to
//!   the macrochip (§4.4): per-destination 320 GB/s bundles, one token per
//!   destination with an 80-cycle round trip;
//! * [`circuit`] — circuit-switched torus (§4.5): optical data circuits
//!   set up hop-by-hop over a low-bandwidth optical control network;
//! * [`limited_p2p`] — limited point-to-point with electronic routing
//!   (§4.6): 20 GB/s channels to row/column peers, one electronic router
//!   hop for everything else.
//!
//! A sixth, post-paper architecture rides on the same trait:
//!
//! * [`hierarchical`] — two-level HERMES-style network: per-cluster
//!   broadcast rings bridged by an inter-cluster point-to-point backbone.
//!   Its provisioning scales with the cluster size rather than the full
//!   site count, so it stays practical past the paper's 8×8 ceiling
//!   (see [`netcore::MacrochipConfig::with_side`]).
//!
//! [`build`] constructs any architecture from a [`NetworkKind`].
//!
//! # Example
//!
//! ```
//! use desim::Time;
//! use netcore::{MacrochipConfig, MessageKind, Network, NetworkKind, Packet, PacketId};
//!
//! let config = MacrochipConfig::scaled();
//! let mut net = networks::build(NetworkKind::PointToPoint, config);
//! let p = Packet::new(PacketId(0), config.grid.site(0, 0), config.grid.site(7, 7),
//!                     64, MessageKind::Data, Time::ZERO);
//! net.inject(p, Time::ZERO).unwrap();
//! while let Some(t) = net.next_event() {
//!     net.advance(t);
//! }
//! let done = net.drain_delivered();
//! assert_eq!(done.len(), 1);
//! assert!(done[0].latency().unwrap().as_ns_f64() > 12.8); // serialization + flight
//! ```

pub mod circuit;
pub mod fabric;
mod geom;
pub mod hierarchical;
pub mod limited_p2p;
pub mod p2p;
pub mod token_ring;
pub mod two_phase;

pub use circuit::CircuitSwitchedNetwork;
pub use fabric::FabricNetwork;
pub use hierarchical::HierarchicalNetwork;
pub use limited_p2p::{LimitedP2pNetwork, RoutingPolicy};
pub use p2p::P2pNetwork;
pub use token_ring::TokenRingNetwork;
pub use two_phase::TwoPhaseNetwork;

use netcore::{FabricConfig, MacrochipConfig, Network, NetworkKind};

/// Builds the network architecture `kind` over `config`.
///
/// # Example
///
/// ```
/// use netcore::{MacrochipConfig, Network, NetworkKind};
/// let net = networks::build(NetworkKind::TokenRing, MacrochipConfig::scaled());
/// assert_eq!(net.kind(), NetworkKind::TokenRing);
/// ```
pub fn build(kind: NetworkKind, config: MacrochipConfig) -> Box<dyn Network> {
    match kind {
        NetworkKind::PointToPoint => Box::new(P2pNetwork::new(config)),
        NetworkKind::LimitedPointToPoint => Box::new(LimitedP2pNetwork::new(config)),
        NetworkKind::TokenRing => Box::new(TokenRingNetwork::new(config)),
        NetworkKind::CircuitSwitched => Box::new(CircuitSwitchedNetwork::new(config)),
        NetworkKind::TwoPhase => Box::new(TwoPhaseNetwork::new(config)),
        NetworkKind::TwoPhaseAlt => Box::new(TwoPhaseNetwork::new_alt(config)),
        NetworkKind::Hierarchical => Box::new(HierarchicalNetwork::new(config)),
    }
}

/// Builds architecture `kind` over a multi-chip `fabric`.
///
/// A one-chip fabric returns the bare single-chip network — byte-for-byte
/// the same simulation object, keeping single-chip results (and their
/// campaign cache keys) identical with or without the fabric layer. Any
/// larger board returns a [`FabricNetwork`] of per-chip instances joined
/// by gateway-to-gateway board links.
///
/// # Example
///
/// ```
/// use netcore::{FabricConfig, MacrochipConfig, Network, NetworkKind};
/// let fabric = FabricConfig::grid(2, MacrochipConfig::scaled());
/// let net = networks::build_fabric(NetworkKind::Hierarchical, &fabric);
/// assert_eq!(net.config().grid.sites(), 256);
/// ```
pub fn build_fabric(kind: NetworkKind, fabric: &FabricConfig) -> Box<dyn Network> {
    if fabric.is_single() {
        build(kind, fabric.chip)
    } else {
        Box::new(FabricNetwork::new(kind, *fabric))
    }
}
