//! The statically WDM-routed point-to-point network (paper §4.2).
//!
//! Every site has a dedicated optical data path to every other site: two
//! wavelengths (5 GB/s) chosen by static WDM routing — the transmitter
//! picks the waveguide leading to the destination's column and the
//! wavelength dropped at the destination's row. There is no arbitration,
//! switching, or path setup of any kind; a packet's latency is queueing at
//! its dedicated channel, serialization at 5 GB/s, and time of flight.
//!
//! Intra-site transfers use a single-cycle loop-back, as in the paper's
//! evaluation (§6.2).

use desim::{EventQueue, Time, TraceEvent, Tracer};
use netcore::{
    FaultResponse, MacrochipConfig, NetFault, NetStats, Network, NetworkKind, Packet, PacketRef,
    PacketSlab, SlabStats, TxChannel,
};

/// Wavelengths per point-to-point channel (2 × 2.5 GB/s = 5 GB/s).
pub const LAMBDAS_PER_CHANNEL: usize = 2;

#[derive(Debug)]
enum Ev {
    /// A channel finished serializing; try to start its next packet.
    TxDone { channel: usize },
    /// A packet's last bit reached the destination.
    Deliver { packet: PacketRef },
}

/// The point-to-point network: S×(S−1) dedicated serializing channels.
///
/// # Example
///
/// ```
/// use desim::Time;
/// use netcore::{MacrochipConfig, MessageKind, Network, Packet, PacketId};
/// use networks::P2pNetwork;
///
/// let config = MacrochipConfig::scaled();
/// let mut net = P2pNetwork::new(config);
/// let (a, b) = (config.grid.site(0, 0), config.grid.site(1, 0));
/// net.inject(Packet::new(PacketId(0), a, b, 64, MessageKind::Data, Time::ZERO),
///            Time::ZERO).unwrap();
/// net.advance(Time::from_ns(20));
/// assert_eq!(net.drain_delivered().len(), 1);
/// ```
pub struct P2pNetwork {
    config: MacrochipConfig,
    channels: Vec<TxChannel<PacketRef>>,
    prop: crate::geom::PropByHops,
    slab: PacketSlab,
    events: EventQueue<Ev>,
    delivered: Vec<Packet>,
    stats: NetStats,
    tracer: Tracer,
}

impl P2pNetwork {
    /// Builds the network for `config`.
    pub fn new(config: MacrochipConfig) -> P2pNetwork {
        config.validate();
        let sites = config.grid.sites();
        let bw = config.channel_bytes_per_ns(LAMBDAS_PER_CHANNEL);
        let channels = (0..sites * sites)
            .map(|_| TxChannel::new(bw, config.queue_capacity))
            .collect();
        P2pNetwork {
            config,
            channels,
            prop: crate::geom::PropByHops::new(&config.layout),
            slab: PacketSlab::new(),
            events: EventQueue::new(),
            delivered: Vec::with_capacity(256),
            stats: NetStats::new(),
            tracer: Tracer::disabled(),
        }
    }

    fn channel_index(&self, p: &Packet) -> usize {
        p.src.index() * self.config.grid.sites() + p.dst.index()
    }

    /// Starts the channel's next transmission if it is idle.
    fn pump(&mut self, channel: usize, now: Time) {
        if let Some((pref, finish)) = self.channels[channel].begin_if_ready(now) {
            // No arbitration on a dedicated channel: the arbitration phase
            // is zero-width, so all pre-wire delay counts as queueing.
            let packet = self.slab.get_mut(pref);
            packet.arb_start = Some(now);
            packet.tx_start = Some(now);
            packet.tx_end = Some(finish);
            let prop = self.prop.delay(
                self.config.grid.coord(packet.src),
                self.config.grid.coord(packet.dst),
            );
            self.events.push(finish, Ev::TxDone { channel });
            self.events
                .push(finish + prop, Ev::Deliver { packet: pref });
        }
    }

    fn deliver(&mut self, pref: PacketRef, at: Time) {
        let mut packet = self.slab.take(pref);
        packet.delivered = Some(at);
        self.stats.on_deliver(&packet);
        self.tracer.emit(at, || TraceEvent::Deliver {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            latency: at.saturating_since(packet.created),
        });
        self.delivered.push(packet);
    }
}

impl Network for P2pNetwork {
    fn kind(&self) -> NetworkKind {
        NetworkKind::PointToPoint
    }

    fn config(&self) -> &MacrochipConfig {
        &self.config
    }

    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet> {
        if packet.src == packet.dst {
            // Single-cycle intra-site loop-back.
            let mut packet = packet;
            packet.arb_start = Some(now);
            packet.tx_start = Some(now);
            packet.tx_end = Some(now);
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: packet.id.0,
                src: packet.src.index(),
                dst: packet.dst.index(),
                bytes: packet.bytes,
            });
            let pref = self.slab.insert(packet);
            self.events
                .push(now + self.config.cycle(), Ev::Deliver { packet: pref });
            self.stats.on_inject(now);
            return Ok(());
        }
        let channel = self.channel_index(&packet);
        // Fast path: skip extracting trace fields (the packet is moved
        // into the queue below) unless the flight recorder is attached.
        let trace_fields = self.tracer.is_enabled().then(|| {
            (
                packet.id.0,
                packet.src.index(),
                packet.dst.index(),
                packet.bytes,
            )
        });
        if self.channels[channel].is_full() {
            self.stats.on_reject();
            return Err(packet);
        }
        let bytes = packet.bytes;
        let pref = self.slab.insert(packet);
        self.channels[channel]
            .try_enqueue(pref, bytes)
            .expect("checked not full");
        self.stats.on_inject(now);
        if let Some((id, src, dst, bytes)) = trace_fields {
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: id,
                src,
                dst,
                bytes,
            });
        }
        self.pump(channel, now);
        Ok(())
    }

    fn next_event(&self) -> Option<Time> {
        self.events.peek_time()
    }

    fn advance(&mut self, now: Time) {
        while let Some((t, ev)) = self.events.pop_due(now) {
            match ev {
                Ev::TxDone { channel } => self.pump(channel, t),
                Ev::Deliver { packet } => self.deliver(packet, t),
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.delivered)
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.delivered);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    fn last_event_time(&self) -> Option<Time> {
        self.events.last_popped()
    }

    fn supports_batched_advance(&self) -> bool {
        true
    }

    fn slab_stats(&self) -> Option<SlabStats> {
        Some(self.slab.stats())
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Degradation policy: every site pair has a dedicated two-wavelength
    /// channel, so a killed waveguide falls back to the spare wavelength
    /// (half bandwidth) instead of dying, and a laser loss halves every
    /// outgoing channel of the affected site.
    fn apply_fault(&mut self, fault: NetFault, _now: Time) -> FaultResponse {
        let sites = self.config.grid.sites();
        let full = self.config.channel_bytes_per_ns(LAMBDAS_PER_CHANNEL);
        let spare = self.config.channel_bytes_per_ns(1);
        match fault {
            NetFault::LinkKill { src, dst } => {
                self.channels[src.index() * sites + dst.index()].set_bytes_per_ns(spare);
                FaultResponse::handled("spare-wavelength")
            }
            NetFault::LinkRepair { src, dst } => {
                self.channels[src.index() * sites + dst.index()].set_bytes_per_ns(full);
                FaultResponse::handled("full-bandwidth")
            }
            NetFault::LaserLoss { site } => {
                for dst in 0..sites {
                    self.channels[site.index() * sites + dst].set_bytes_per_ns(spare);
                }
                FaultResponse::handled("spare-wavelength")
            }
            NetFault::LaserRestore { site } => {
                for dst in 0..sites {
                    self.channels[site.index() * sites + dst].set_bytes_per_ns(full);
                }
                FaultResponse::handled("full-bandwidth")
            }
            NetFault::SiteKill { .. } => FaultResponse::unhandled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Span;
    use netcore::{MessageKind, PacketId, SiteId};

    fn net() -> P2pNetwork {
        P2pNetwork::new(MacrochipConfig::scaled())
    }

    fn data(id: u64, src: SiteId, dst: SiteId, at: Time) -> Packet {
        Packet::new(PacketId(id), src, dst, 64, MessageKind::Data, at)
    }

    fn run_until_idle(net: &mut P2pNetwork) {
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
    }

    #[test]
    fn single_packet_latency_is_serialization_plus_flight() {
        let mut n = net();
        let g = n.config.grid;
        n.inject(data(0, g.site(0, 0), g.site(7, 7), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 1);
        // 64 B at 5 B/ns = 12.8 ns; 14 hops at 0.25 ns = 3.5 ns.
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(16.3));
    }

    #[test]
    fn loopback_takes_one_cycle() {
        let mut n = net();
        let s = n.config.grid.site(2, 2);
        n.inject(data(0, s, s, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done[0].latency().unwrap(), Span::from_ps(200));
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 0));
        n.inject(data(0, a, b, Time::ZERO), Time::ZERO).unwrap();
        n.inject(data(1, a, b, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 2);
        let l0 = done[0].latency().unwrap();
        let l1 = done[1].latency().unwrap();
        // The second waits a full serialization time behind the first.
        assert_eq!(l1 - l0, Span::from_ns_f64(12.8));
    }

    #[test]
    fn distinct_destinations_do_not_interfere() {
        let mut n = net();
        let g = n.config.grid;
        let a = g.site(0, 0);
        n.inject(data(0, a, g.site(1, 0), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, a, g.site(2, 0), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        // Both serialize in parallel on their dedicated channels.
        let l0 = done[0].latency().unwrap().as_ns_f64();
        let l1 = done[1].latency().unwrap().as_ns_f64();
        assert!((l0 - 13.05).abs() < 0.01, "l0 = {l0}");
        assert!((l1 - 13.3).abs() < 0.01, "l1 = {l1}");
    }

    #[test]
    fn backpressure_after_queue_fills() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 0));
        let cap = n.config.queue_capacity;
        // One packet enters service immediately; `cap` more fill the queue.
        for i in 0..=cap as u64 {
            n.inject(data(i, a, b, Time::ZERO), Time::ZERO).unwrap();
        }
        let err = n.inject(data(99, a, b, Time::ZERO), Time::ZERO);
        assert!(err.is_err());
        assert_eq!(n.stats().rejected_packets(), 1);
    }

    #[test]
    fn stats_count_deliveries() {
        let mut n = net();
        let g = n.config.grid;
        for i in 0..4usize {
            n.inject(
                data(i as u64, g.site(0, 0), g.site(i + 1, 0), Time::ZERO),
                Time::ZERO,
            )
            .unwrap();
        }
        run_until_idle(&mut n);
        assert_eq!(n.stats().delivered_packets(), 4);
        assert_eq!(n.stats().delivered_bytes(), 256);
        assert_eq!(n.drain_delivered().len(), 4);
    }

    #[test]
    fn killed_link_reroutes_to_spare_wavelength() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 0));
        let r = n.apply_fault(NetFault::LinkKill { src: a, dst: b }, Time::ZERO);
        assert!(r.handled);
        assert_eq!(r.action, "spare-wavelength");
        n.inject(data(0, a, b, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        // 64 B at 2.5 B/ns = 25.6 ns serialization (twice the healthy
        // 12.8 ns), plus one hop at 0.25 ns.
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(25.85));
        // Repair restores the full two-wavelength rate.
        n.apply_fault(NetFault::LinkRepair { src: a, dst: b }, Time::ZERO);
        let t = Time::from_us(1);
        n.inject(data(1, a, b, t), t).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(13.05));
    }

    #[test]
    fn laser_loss_halves_every_outgoing_channel() {
        let mut n = net();
        let g = n.config.grid;
        let a = g.site(0, 0);
        n.apply_fault(NetFault::LaserLoss { site: a }, Time::ZERO);
        n.inject(data(0, a, g.site(7, 7), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        // 64 B at 2.5 B/ns = 25.6 ns; 14 hops at 0.25 ns = 3.5 ns.
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(29.1));
    }

    #[test]
    fn channel_sustains_full_rate() {
        // Saturate one channel and check near-100% utilization: the p2p
        // network has no overheads (§6.1).
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(7, 0));
        let mut t = Time::ZERO;
        let mut sent = 0u64;
        while t < Time::from_us(2) {
            if n.inject(data(sent, a, b, t), t).is_ok() {
                sent += 1;
            }
            n.advance(t);
            t += Span::from_ns_f64(12.8); // one serialization time
        }
        run_until_idle(&mut n);
        let delivered = n.stats().delivered_packets();
        // 2 us / 12.8 ns per packet ≈ 156 packets.
        assert!(delivered >= 150, "delivered {delivered}");
        let rate = n.stats().delivered_bytes_per_ns();
        assert!(rate > 4.9, "sustained {rate} B/ns of 5");
    }
}
