//! The two-phase arbitration-based switched optical network (paper §4.3).
//!
//! All sites in a row share a 40 GB/s (16-wavelength) optical data channel
//! to each destination site: 512 shared channels on the 8×8 macrochip.
//! Access is arbitrated in two phases, fully distributed:
//!
//! 1. a request is posted on the row's arbitration waveguide; every site
//!    in the arbitration domain sees it and assigns the same data slot to
//!    the requester with a per-destination round-robin counter;
//! 2. the destination's column manager notifies the column, the feed
//!    switches and the destination's input switch are set ahead of the
//!    slot, and the source transmits.
//!
//! Data channels are time-slotted in multiples of the 0.4 ns arbitration
//! slot. Because each site owns a single 1×8 switch tree per *column*
//! (two in the ALT configuration), a site can feed at most one (ALT: two)
//! transmissions per column at a time. Slot assignment is oblivious to
//! tree state — each channel's arbiter runs independently — so a granted
//! slot whose source tree is busy is **wasted**: the reservation burns on
//! the channel and the packet must re-arbitrate after a full pipeline
//! delay. This is exactly the switch-tree contention the paper blames for
//! the base design's low sustained bandwidth, and why the ALT variant
//! (double trees, double transmitters) recovers a factor ~1.4 (§6.1).

use desim::{EventQueue, Span, Time, TraceEvent, Tracer};
use netcore::{
    FaultResponse, MacrochipConfig, NetFault, NetStats, Network, NetworkKind, Packet, PacketRef,
    PacketSlab, SiteId, SlabStats,
};
use std::collections::VecDeque;

/// Wavelengths per shared data channel (16 × 2.5 GB/s = 40 GB/s).
pub const LAMBDAS_PER_CHANNEL: usize = 16;

/// The basic arbitration slot: 0.4 ns (§4.3).
pub const BASIC_SLOT: Span = Span::from_ps(400);

/// Basic slots per assigned data slot: one 64-byte cache line at 40 GB/s.
pub const DATA_SLOT_BASICS: u64 = 4;

/// Fixed arbitration pipeline: request propagation along the row
/// (~1.75 ns worst case), slot assignment, column notification (~1.75 ns)
/// and — dominating the budget — settling of the broadband ring-resonator
/// feed switches, which the paper's protocol explicitly times the switch
/// notification around ("timed to accommodate the switch delay", §4.3).
/// A packet cannot use a slot earlier than its injection plus this delay,
/// and a wasted grant pays it again. This per-message overhead is why the
/// paper finds the point-to-point network at least 4.5x faster on
/// invalidation-heavy (MS) traffic (§6.2).
pub const ARB_PIPELINE: Span = Span::from_ps(20_000);

/// WDM factor of the column notification waveguides (§4.3: arbitration
/// wavelengths are assigned cyclically to enable WDM on the single
/// notification waveguide per column).
pub const NOTIFY_WDM: u64 = 2;

/// Minimum spacing between switch-request notifications on one column's
/// notification waveguide: one 0.4 ns arbitration slot shared by
/// [`NOTIFY_WDM`] wavelengths. Every data transmission needs one
/// notification to set the column's switches, so this waveguide is the
/// architecture's structural bottleneck — the reason the paper's base
/// design sustains only ~7.5% of peak on uniform traffic (§6.1).
pub const NOTIFY_INTERVAL: Span = Span::from_ps(400 / NOTIFY_WDM);

/// A packet waiting on a shared channel, with its earliest usable slot.
#[derive(Debug, Clone, Copy)]
struct Queued {
    packet: PacketRef,
    eligible_at: Time,
    /// Data slots this packet has burned on switch-tree conflicts so far.
    wasted: u32,
}

/// One shared (row → destination) channel's arbitration state.
#[derive(Debug)]
struct Channel {
    /// Per-source FIFO (index = column of the source within its row).
    queues: Vec<VecDeque<Queued>>,
    /// Bit `s` set iff `queues[s]` is non-empty (the arbitration domain
    /// is one row, so a word covers it); lets the round-robin scan and
    /// the pending check skip empty queues without touching them.
    occ: u64,
    /// Round-robin pointer over sources.
    rr: usize,
    /// The channel is reserved up to this instant.
    free_at: Time,
    /// Whether a `Slot` event is outstanding.
    scheduled: bool,
}

#[derive(Debug)]
enum Ev {
    /// The channel's next arbitration decision point.
    Slot { channel: usize },
    /// A packet's last bit reached the destination.
    Deliver { packet: PacketRef },
}

/// The two-phase arbitrated network (base or ALT configuration).
///
/// # Example
///
/// ```
/// use desim::Time;
/// use netcore::{MacrochipConfig, MessageKind, Network, Packet, PacketId};
/// use networks::TwoPhaseNetwork;
///
/// let config = MacrochipConfig::scaled();
/// let mut net = TwoPhaseNetwork::new(config);
/// let p = Packet::new(PacketId(0), config.grid.site(0, 0), config.grid.site(5, 5),
///                     64, MessageKind::Data, Time::ZERO);
/// net.inject(p, Time::ZERO).unwrap();
/// while let Some(t) = net.next_event() { net.advance(t); }
/// let done = net.drain_delivered();
/// // Arbitration pipeline (20 ns) + slotting + serialization + flight.
/// assert!(done[0].latency().unwrap().as_ns_f64() >= 20.0);
/// ```
pub struct TwoPhaseNetwork {
    config: MacrochipConfig,
    alt: bool,
    /// Channels indexed `row * sites + dst`.
    channels: Vec<Channel>,
    /// Switch-tree busy times, indexed `site * side + column`; one entry
    /// per tree (two in ALT).
    trees: Vec<Vec<Time>>,
    /// Next instant each column's notification waveguide can carry another
    /// switch request.
    notify_free: Vec<Time>,
    /// Dead dies: masked out of arbitration as both requestors and
    /// destinations.
    masked_sites: Vec<bool>,
    /// Laser-dead transmitters: masked as requestors only.
    masked_tx: Vec<bool>,
    /// Killed shared (row → destination) channels.
    masked_channels: Vec<bool>,
    /// Shared-channel bandwidth, precomputed.
    bw: f64,
    /// Row-then-column propagation delays by hop count, precomputed.
    prop: crate::geom::PropByHops,
    /// Memo of the last slotted duration / raw serialization computed:
    /// traffic has one or two fixed packet sizes, so these turn the
    /// per-grant float math into a compare (same values, cached).
    dur_memo: std::cell::Cell<(u32, Span)>,
    ser_memo: std::cell::Cell<(u32, Span)>,
    slab: PacketSlab,
    events: EventQueue<Ev>,
    delivered: Vec<Packet>,
    stats: NetStats,
    tracer: Tracer,
}

impl TwoPhaseNetwork {
    /// Builds the base configuration (one switch tree per column).
    pub fn new(config: MacrochipConfig) -> TwoPhaseNetwork {
        TwoPhaseNetwork::with_trees(config, 1)
    }

    /// Builds the ALT configuration: doubled transmitters and switch trees.
    pub fn new_alt(config: MacrochipConfig) -> TwoPhaseNetwork {
        TwoPhaseNetwork::with_trees(config, 2)
    }

    /// Builds with an explicit number of switch trees per (site, column);
    /// used by the tree-count ablation.
    ///
    /// # Panics
    ///
    /// Panics if `trees_per_column` is zero.
    pub fn with_trees(config: MacrochipConfig, trees_per_column: usize) -> TwoPhaseNetwork {
        config.validate();
        assert!(trees_per_column > 0, "need at least one switch tree");
        let side = config.grid.side();
        assert!(side <= 64, "occupancy word covers one row (side <= 64)");
        let sites = config.grid.sites();
        let channels = (0..side * sites)
            .map(|_| Channel {
                queues: (0..side).map(|_| VecDeque::with_capacity(4)).collect(),
                occ: 0,
                rr: 0,
                free_at: Time::ZERO,
                scheduled: false,
            })
            .collect();
        let bw = config.channel_bytes_per_ns(LAMBDAS_PER_CHANNEL);
        TwoPhaseNetwork {
            config,
            alt: trees_per_column > 1,
            channels,
            trees: vec![vec![Time::ZERO; trees_per_column]; sites * side],
            notify_free: vec![Time::ZERO; side],
            masked_sites: vec![false; sites],
            masked_tx: vec![false; sites],
            masked_channels: vec![false; side * sites],
            bw,
            prop: crate::geom::PropByHops::new(&config.layout),
            dur_memo: std::cell::Cell::new((64, Self::slotted_duration_raw(bw, 64))),
            ser_memo: std::cell::Cell::new((64, Span::from_ns_f64(64.0 / bw))),
            slab: PacketSlab::new(),
            events: EventQueue::new(),
            delivered: Vec::with_capacity(256),
            stats: NetStats::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// True if this is the ALT configuration.
    pub fn is_alt(&self) -> bool {
        self.alt
    }

    fn channel_index(&self, src: SiteId, dst: SiteId) -> usize {
        self.config.grid.y(src) * self.config.grid.sites() + dst.index()
    }

    fn tree_index(&self, site: SiteId, dst: SiteId) -> usize {
        site.index() * self.config.grid.side() + self.config.grid.x(dst)
    }

    /// Rounds `t` up to the global 0.4 ns slot grid.
    fn align_slot(t: Time) -> Time {
        let slot = BASIC_SLOT.as_ps();
        Time::from_ps(t.as_ps().div_ceil(slot) * slot)
    }

    /// Transmission duration quantized to whole data slots. The
    /// distributed round-robin counters assign one cache-line-sized slot
    /// (four basic slots, 1.6 ns) per grant: every site in the domain
    /// must agree on slot boundaries without seeing message sizes, so an
    /// 8-byte acknowledgment burns a whole data slot — the arbitration
    /// overhead that dominates the MS sharing mix in the paper (§6.2).
    fn slotted_duration(&self, bytes: u32) -> Span {
        let (memo_bytes, memo_span) = self.dur_memo.get();
        if memo_bytes == bytes {
            return memo_span;
        }
        let span = Self::slotted_duration_raw(self.bw, bytes);
        self.dur_memo.set((bytes, span));
        span
    }

    fn slotted_duration_raw(bw: f64, bytes: u32) -> Span {
        let raw = Span::from_ns_f64(bytes as f64 / bw);
        let slots = raw
            .as_ps()
            .div_ceil(BASIC_SLOT.as_ps())
            .max(DATA_SLOT_BASICS);
        Span::from_ps(slots * BASIC_SLOT.as_ps())
    }

    /// Raw (unslotted) serialization time of `bytes` on a shared channel.
    fn serialization(&self, bytes: u32) -> Span {
        let (memo_bytes, memo_span) = self.ser_memo.get();
        if memo_bytes == bytes {
            return memo_span;
        }
        let span = Span::from_ns_f64(bytes as f64 / self.bw);
        self.ser_memo.set((bytes, span));
        span
    }

    /// Ensures a `Slot` event is pending for `channel` no earlier than the
    /// channel's reservation horizon and `at`.
    fn schedule_slot(&mut self, channel: usize, at: Time) {
        let ch = &mut self.channels[channel];
        if ch.scheduled {
            return;
        }
        ch.scheduled = true;
        let t = Self::align_slot(at.max(ch.free_at));
        self.events.push(t, Ev::Slot { channel });
    }

    fn on_slot(&mut self, channel: usize, t: Time) {
        self.channels[channel].scheduled = false;
        let side = self.config.grid.side();
        let sites = self.config.grid.sites();
        let row = netcore::fast_div(channel, sites);
        let dst = SiteId::from_index(netcore::fast_rem(channel, sites));

        // Phase 2 precondition: every transmission needs a switch-request
        // slot on the destination column's notification waveguide. If it
        // is occupied, the arbiter defers the channel (no waste, but the
        // column's aggregate rate is capped by notifications).
        let col = self.config.grid.x(dst);
        if self.notify_free[col] > t {
            let at = self.notify_free[col];
            self.schedule_slot(channel, at);
            return;
        }

        // Round-robin among sources whose head packet is eligible; the
        // occupancy bitmap skips empty queues without dereferencing them.
        let (selected, earliest_wait) = {
            let ch = &self.channels[channel];
            let occ = ch.occ;
            let mut selected = None;
            let mut earliest_wait: Option<Time> = None;
            if occ != 0 {
                for k in 0..side {
                    // `rr + k < 2 * side`: a wrap-subtract replaces the
                    // modulo without changing the visit order.
                    let mut s = ch.rr + k;
                    if s >= side {
                        s -= side;
                    }
                    if occ & (1 << s) == 0 {
                        continue;
                    }
                    let q = ch.queues[s].front().expect("occupancy bit set");
                    if q.eligible_at <= t {
                        selected = Some(s);
                        break;
                    }
                    earliest_wait = Some(match earliest_wait {
                        Some(e) => e.min(q.eligible_at),
                        None => q.eligible_at,
                    });
                }
            }
            (selected, earliest_wait)
        };

        let Some(src_col) = selected else {
            // Nothing eligible yet; revisit when the earliest becomes so.
            if let Some(at) = earliest_wait {
                self.schedule_slot(channel, at);
            }
            return;
        };

        let src = self.config.grid.site(src_col, row);
        let head = *self.channels[channel].queues[src_col]
            .front()
            .expect("selected source has a head packet");
        let dur = self.slotted_duration(self.slab.get(head.packet).bytes);

        // Phase 2: the switch tree for the destination's column must be
        // free for the whole reserved duration.
        let tree_idx = self.tree_index(src, dst);
        let free_tree = self.trees[tree_idx].iter().position(|&b| b <= t);

        // The arbiter granted this slot range either way: the channel is
        // reserved for `dur` from `t`.
        {
            let ch = &mut self.channels[channel];
            ch.rr = netcore::fast_rem(src_col + 1, side);
            ch.free_at = t + dur;
        }
        // The grant consumed its notification slot whether or not the
        // transmission goes through.
        self.notify_free[col] = t + NOTIFY_INTERVAL;

        match free_tree {
            Some(tree) => {
                let ch = &mut self.channels[channel];
                let queued = ch.queues[src_col].pop_front().expect("head packet present");
                if ch.queues[src_col].is_empty() {
                    ch.occ &= !(1 << src_col);
                }
                let pref = queued.packet;
                self.trees[tree_idx][tree] = t + dur;
                let bytes = self.slab.get(pref).bytes;
                let ser = self.serialization(bytes);
                let prop = self
                    .prop
                    .delay(self.config.grid.coord(src), self.config.grid.coord(dst));
                let packet = self.slab.get_mut(pref);
                packet.tx_start = Some(t);
                packet.routed_bytes = 0;
                packet.tx_end = Some(t + ser);
                let (id, wasted) = (packet.id.0, queued.wasted);
                self.tracer.emit(t, || TraceEvent::ArbGrant {
                    packet: id,
                    site: src.index(),
                    wasted_slots: wasted,
                });
                self.events
                    .push(t + ser + prop, Ev::Deliver { packet: pref });
            }
            None => {
                // Tree conflict: reservation burns, packet re-arbitrates.
                self.stats.on_wasted_slot();
                let q = self.channels[channel].queues[src_col]
                    .front_mut()
                    .expect("head packet present");
                q.eligible_at = t + ARB_PIPELINE;
                q.wasted += 1;
                let pref = q.packet;
                let id = self.slab.get(pref).id.0;
                self.tracer.emit(t, || TraceEvent::Retry {
                    packet: id,
                    site: src.index(),
                });
            }
        }

        // Keep arbitrating while any packet is pending.
        if self.channels[channel].occ != 0 {
            let at = self.channels[channel].free_at;
            self.schedule_slot(channel, at);
        }
    }

    fn deliver(&mut self, pref: PacketRef, at: Time) {
        let mut packet = self.slab.take(pref);
        packet.delivered = Some(at);
        self.stats.on_deliver(&packet);
        self.tracer.emit(at, || TraceEvent::Deliver {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            latency: at.saturating_since(packet.created),
        });
        self.delivered.push(packet);
    }
}

impl Network for TwoPhaseNetwork {
    fn kind(&self) -> NetworkKind {
        if self.alt {
            NetworkKind::TwoPhaseAlt
        } else {
            NetworkKind::TwoPhase
        }
    }

    fn config(&self) -> &MacrochipConfig {
        &self.config
    }

    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet> {
        if packet.src == packet.dst {
            let mut packet = packet;
            packet.arb_start = Some(now);
            packet.tx_start = Some(now);
            packet.tx_end = Some(now);
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: packet.id.0,
                src: packet.src.index(),
                dst: packet.dst.index(),
                bytes: packet.bytes,
            });
            let pref = self.slab.insert(packet);
            self.events
                .push(now + self.config.cycle(), Ev::Deliver { packet: pref });
            self.stats.on_inject(now);
            return Ok(());
        }
        let channel = self.channel_index(packet.src, packet.dst);
        let src_col = self.config.grid.x(packet.src);
        if self.masked_channels[channel]
            || self.masked_sites[packet.src.index()]
            || self.masked_sites[packet.dst.index()]
            || self.masked_tx[packet.src.index()]
        {
            // The arbiter masks dead requestors, channels and sinks out of
            // the round-robin: the packet is absorbed as a fault drop so
            // nothing ever waits on a masked resource. The flight recorder
            // still sees the admission — stats counted it as injected, so
            // an Inject event must precede the Drop or the trace stream
            // under-reports injections.
            self.stats.on_inject(now);
            self.stats.on_drop();
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: packet.id.0,
                src: packet.src.index(),
                dst: packet.dst.index(),
                bytes: packet.bytes,
            });
            self.tracer.emit(now, || TraceEvent::Drop {
                packet: packet.id.0,
                site: packet.src.index(),
                reason: "masked",
            });
            return Ok(());
        }
        if self.channels[channel].queues[src_col].len() >= self.config.queue_capacity {
            self.stats.on_reject();
            return Err(packet);
        }
        let mut packet = packet;
        packet.arb_start = Some(now);
        self.tracer.emit(now, || TraceEvent::Inject {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            bytes: packet.bytes,
        });
        self.tracer.emit(now, || TraceEvent::ArbRequest {
            packet: packet.id.0,
            site: packet.src.index(),
        });
        let eligible_at = now + ARB_PIPELINE;
        let pref = self.slab.insert(packet);
        let ch = &mut self.channels[channel];
        ch.queues[src_col].push_back(Queued {
            packet: pref,
            eligible_at,
            wasted: 0,
        });
        ch.occ |= 1 << src_col;
        self.stats.on_inject(now);
        self.schedule_slot(channel, eligible_at);
        Ok(())
    }

    fn next_event(&self) -> Option<Time> {
        self.events.peek_time()
    }

    fn advance(&mut self, now: Time) {
        while let Some((t, ev)) = self.events.pop_due(now) {
            match ev {
                Ev::Slot { channel } => self.on_slot(channel, t),
                Ev::Deliver { packet } => self.deliver(packet, t),
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.delivered)
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.delivered);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    fn last_event_time(&self) -> Option<Time> {
        self.events.last_popped()
    }

    fn supports_batched_advance(&self) -> bool {
        true
    }

    fn slab_stats(&self) -> Option<SlabStats> {
        Some(self.slab.stats())
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Degradation policy: the distributed arbiters mask dead requestors.
    /// A dead die (or laser-dead transmitter) is dropped from every
    /// round-robin domain and its queued packets are evicted for the
    /// wrapper to triage; a killed shared channel is masked the same way.
    fn apply_fault(&mut self, fault: NetFault, _now: Time) -> FaultResponse {
        let sites = self.config.grid.sites();
        let g = self.config.grid;
        match fault {
            NetFault::SiteKill { site } => {
                self.masked_sites[site.index()] = true;
                let mut refs = Vec::new();
                // The dead site's own pending requests, across its row.
                let row = g.y(site);
                let col = g.x(site);
                for d in 0..sites {
                    let ch = &mut self.channels[row * sites + d];
                    refs.extend(ch.queues[col].drain(..).map(|q| q.packet));
                    ch.occ &= !(1 << col);
                }
                // Everyone else's packets destined to the dead site.
                for r in 0..g.side() {
                    let ch = &mut self.channels[r * sites + site.index()];
                    for queue in &mut ch.queues {
                        refs.extend(queue.drain(..).map(|q| q.packet));
                    }
                    ch.occ = 0;
                }
                let evicted = refs.into_iter().map(|r| self.slab.take(r)).collect();
                FaultResponse::handled("mask-requestor").with_evicted(evicted)
            }
            NetFault::LaserLoss { site } => {
                self.masked_tx[site.index()] = true;
                let mut refs = Vec::new();
                let row = g.y(site);
                let col = g.x(site);
                for d in 0..sites {
                    let ch = &mut self.channels[row * sites + d];
                    refs.extend(ch.queues[col].drain(..).map(|q| q.packet));
                    ch.occ &= !(1 << col);
                }
                let evicted = refs.into_iter().map(|r| self.slab.take(r)).collect();
                FaultResponse::handled("mask-requestor").with_evicted(evicted)
            }
            NetFault::LaserRestore { site } => {
                self.masked_tx[site.index()] = false;
                FaultResponse::handled("unmask-requestor")
            }
            NetFault::LinkKill { src, dst } => {
                let channel = self.channel_index(src, dst);
                self.masked_channels[channel] = true;
                let mut refs = Vec::new();
                let ch = &mut self.channels[channel];
                for queue in &mut ch.queues {
                    refs.extend(queue.drain(..).map(|q| q.packet));
                }
                ch.occ = 0;
                let evicted: Vec<Packet> = refs.into_iter().map(|r| self.slab.take(r)).collect();
                FaultResponse::handled("mask-channel").with_evicted(evicted)
            }
            NetFault::LinkRepair { src, dst } => {
                let channel = self.channel_index(src, dst);
                self.masked_channels[channel] = false;
                FaultResponse::handled("unmask-channel")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{MessageKind, PacketId};

    fn net() -> TwoPhaseNetwork {
        TwoPhaseNetwork::new(MacrochipConfig::scaled())
    }

    fn data(id: u64, src: SiteId, dst: SiteId, at: Time) -> Packet {
        Packet::new(PacketId(id), src, dst, 64, MessageKind::Data, at)
    }

    fn run_until_idle(net: &mut TwoPhaseNetwork) {
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
    }

    #[test]
    fn single_packet_pays_the_arbitration_pipeline() {
        let mut n = net();
        let g = n.config.grid;
        n.inject(data(0, g.site(0, 0), g.site(3, 3), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let lat = n.drain_delivered()[0].latency().unwrap().as_ns_f64();
        // 20 ns pipeline + 1.6 ns serialization + 1.5 ns flight.
        assert!((lat - 23.1).abs() < 0.5, "latency {lat}");
    }

    #[test]
    fn row_mates_share_the_channel() {
        let mut n = net();
        let g = n.config.grid;
        let dst = g.site(5, 5);
        // Two sites in row 0 send to the same destination: transmissions
        // serialize on the shared 40 GB/s channel.
        n.inject(data(0, g.site(0, 0), dst, Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, g.site(1, 0), dst, Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 2);
        let mut finishes: Vec<Time> = done.iter().map(|p| p.delivered.unwrap()).collect();
        finishes.sort_unstable();
        // Second transmission starts one slotted duration (1.6 ns) after
        // the first; its flight is 0.25 ns shorter from the nearer source.
        let gap = finishes[1].saturating_since(finishes[0]).as_ns_f64();
        assert!((gap - 1.35).abs() < 0.01, "gap {gap}");
    }

    #[test]
    fn different_rows_do_not_share_channels() {
        let mut n = net();
        let g = n.config.grid;
        let dst = g.site(5, 5);
        n.inject(data(0, g.site(0, 0), dst, Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, g.site(0, 1), dst, Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        let l0 = done[0].latency().unwrap().as_ns_f64();
        let l1 = done[1].latency().unwrap().as_ns_f64();
        // Both transmit concurrently on their own row channels.
        assert!((l0 - l1).abs() < 1.5, "l0={l0} l1={l1}");
    }

    #[test]
    fn tree_conflict_wastes_the_slot() {
        let mut n = net();
        let g = n.config.grid;
        let src = g.site(0, 0);
        // Two destinations in the same column: the single switch tree can
        // feed only one at a time; the oblivious arbiters collide.
        n.inject(data(0, src, g.site(5, 2), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, src, g.site(5, 3), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 2);
        assert!(
            n.stats().wasted_slots() >= 1,
            "expected a wasted slot, got {}",
            n.stats().wasted_slots()
        );
        // The loser re-arbitrated: a full extra pipeline delay.
        let mut lats: Vec<f64> = done
            .iter()
            .map(|p| p.latency().unwrap().as_ns_f64())
            .collect();
        lats.sort_by(f64::total_cmp);
        assert!(lats[1] - lats[0] >= 4.0, "lats {lats:?}");
    }

    #[test]
    fn alt_trees_absorb_the_conflict() {
        let mut n = TwoPhaseNetwork::new_alt(MacrochipConfig::scaled());
        let g = n.config.grid;
        let src = g.site(0, 0);
        n.inject(data(0, src, g.site(5, 2), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, src, g.site(5, 3), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 2);
        assert_eq!(n.stats().wasted_slots(), 0);
        assert_eq!(n.kind(), NetworkKind::TwoPhaseAlt);
    }

    #[test]
    fn every_grant_burns_a_whole_data_slot() {
        let n = net();
        // Even an 8 B ack occupies one full cache-line slot (1.6 ns).
        assert_eq!(n.slotted_duration(8), Span::from_ps(1_600));
        // 64 B = 1.6 ns = 4 basic slots exactly.
        assert_eq!(n.slotted_duration(64), Span::from_ps(1_600));
        // Oversized transfers extend by whole basic slots.
        assert_eq!(n.slotted_duration(72), Span::from_ps(2_000));
    }

    #[test]
    fn slot_alignment_rounds_up() {
        assert_eq!(
            TwoPhaseNetwork::align_slot(Time::from_ps(401)),
            Time::from_ps(800)
        );
        assert_eq!(
            TwoPhaseNetwork::align_slot(Time::from_ps(800)),
            Time::from_ps(800)
        );
    }

    #[test]
    fn queue_capacity_backpressures() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 1));
        let cap = n.config.queue_capacity;
        for i in 0..cap as u64 {
            n.inject(data(i, a, b, Time::ZERO), Time::ZERO).unwrap();
        }
        assert!(n.inject(data(99, a, b, Time::ZERO), Time::ZERO).is_err());
    }

    #[test]
    fn loopback_takes_one_cycle() {
        let mut n = net();
        let s = n.config.grid.site(3, 6);
        n.inject(data(0, s, s, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        assert_eq!(
            n.drain_delivered()[0].latency().unwrap(),
            Span::from_ps(200)
        );
    }

    #[test]
    fn base_kind_is_two_phase() {
        assert_eq!(net().kind(), NetworkKind::TwoPhase);
        assert!(!net().is_alt());
    }

    #[test]
    fn dead_site_is_masked_and_its_queues_evicted() {
        let mut n = net();
        let g = n.config.grid;
        let dead = g.site(2, 0);
        // One pending request from the dying site, one destined to it.
        n.inject(data(0, dead, g.site(5, 5), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, g.site(0, 3), dead, Time::ZERO), Time::ZERO)
            .unwrap();
        let r = n.apply_fault(NetFault::SiteKill { site: dead }, Time::ZERO);
        assert!(r.handled);
        assert_eq!(r.action, "mask-requestor");
        assert_eq!(r.evicted.len(), 2);
        // New traffic touching the dead site is absorbed as drops, never
        // queued against a masked requestor.
        n.inject(data(2, dead, g.site(5, 5), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(3, g.site(0, 3), dead, Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        assert!(n.drain_delivered().is_empty());
        assert_eq!(n.stats().dropped_packets(), 2);
        // Healthy pairs in the same row still communicate.
        n.inject(data(4, g.site(3, 0), g.site(5, 5), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 1);
    }

    #[test]
    fn masked_channel_recovers_after_repair() {
        let mut n = net();
        let g = n.config.grid;
        let (src, dst) = (g.site(0, 0), g.site(4, 4));
        n.apply_fault(NetFault::LinkKill { src, dst }, Time::ZERO);
        n.inject(data(0, src, dst, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        assert_eq!(n.stats().dropped_packets(), 1);
        n.apply_fault(NetFault::LinkRepair { src, dst }, Time::ZERO);
        let t = Time::from_ns(100);
        n.inject(data(1, src, dst, t), t).unwrap();
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 1);
    }
}
