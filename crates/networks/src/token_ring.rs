//! The token-ring-arbitrated optical crossbar — Corona adapted to the
//! macrochip (paper §4.4).
//!
//! Every destination site owns a wide (128-wavelength, 320 GB/s) data
//! bundle shared by all senders, plus a token that circulates a serpentine
//! ring visiting all 64 sites. A sender diverts the token when it passes,
//! transmits, and re-injects the token. Because the macrochip's dimensions
//! are 10× Corona's single die, the token round trip is 80 core cycles
//! (16 ns) — the latency that dominates this architecture's behaviour at
//! macrochip scale (§6.1).
//!
//! The token is simulated lazily: when nobody wants it, only its (position,
//! time) reference point is kept; event cost is proportional to traffic,
//! not to token spins.

use desim::{EventQueue, Span, Time, TraceEvent, Tracer};
use netcore::{
    FaultResponse, MacrochipConfig, NetFault, NetStats, Network, NetworkKind, Packet, PacketRef,
    PacketSlab, SlabStats, TxChannel,
};

/// Wavelengths per destination bundle (128 × 2.5 GB/s = 320 GB/s).
pub const LAMBDAS_PER_BUNDLE: usize = 128;

/// Cost of releasing the token after a transmission: the holder re-injects
/// a light pulse into the token bus (§4.4), modeled as half a core cycle.
pub const TOKEN_RELEASE: desim::Span = desim::Span::from_ps(100);

#[derive(Debug)]
enum Ev {
    /// The token for destination `dst` arrives at ring position `pos`.
    TokenArrive { dst: usize, pos: usize },
    /// A packet's last bit reached the destination.
    Deliver { packet: PacketRef },
}

#[derive(Debug, Clone, Copy)]
enum Token {
    /// Unclaimed: it departed ring position `pos` at time `at` and keeps
    /// circulating.
    Free { pos: usize, at: Time },
    /// A `TokenArrive` event is in flight to a requester.
    Claimed,
}

/// The Corona-style token-ring crossbar on the macrochip.
///
/// # Example
///
/// ```
/// use desim::Time;
/// use netcore::{MacrochipConfig, MessageKind, Network, Packet, PacketId};
/// use networks::TokenRingNetwork;
///
/// let config = MacrochipConfig::scaled();
/// let mut net = TokenRingNetwork::new(config);
/// let p = Packet::new(PacketId(0), config.grid.site(0, 0), config.grid.site(4, 4),
///                     64, MessageKind::Data, Time::ZERO);
/// net.inject(p, Time::ZERO).unwrap();
/// while let Some(t) = net.next_event() { net.advance(t); }
/// assert_eq!(net.drain_delivered().len(), 1);
/// ```
pub struct TokenRingNetwork {
    config: MacrochipConfig,
    /// Per-destination shared bundle; serialization only — queueing is in
    /// `queues`, token arbitration decides who transmits.
    bundles: Vec<TxChannel>,
    /// Per (source, destination) sender queue, S×S dense.
    queues: Vec<std::collections::VecDeque<PacketRef>>,
    /// Per-destination occupancy bitmap over *ring positions*: bit `p` of
    /// `waiting[dst * words_per_dst ..]` is set iff the site at ring
    /// position `p` has packets queued for `dst`. Keeps the token
    /// hand-off search O(words) instead of a walk around the ring.
    waiting: Vec<u64>,
    /// Words per destination in `waiting`.
    words_per_dst: usize,
    /// Ring geometry, precomputed at construction with the same `Layout`
    /// calls the hot path used to make (so the cached values are
    /// bit-identical): token hop time, full round trip, and the
    /// site <-> serpentine-ring-position maps.
    hop: Span,
    round_trip: Span,
    /// Site index -> ring position.
    site_rpos: Vec<usize>,
    /// Ring position -> site id.
    pos_site: Vec<netcore::SiteId>,
    slab: PacketSlab,
    /// Token state per destination.
    tokens: Vec<Token>,
    /// Packets a site may transmit per token grab; the paper's evaluation
    /// behaves like one cache line per grab ("one cycle to transmit ... 80
    /// cycles to reacquire").
    max_burst: usize,
    events: EventQueue<Ev>,
    delivered: Vec<Packet>,
    stats: NetStats,
    tracer: Tracer,
}

impl TokenRingNetwork {
    /// Builds the network with the paper's one-packet-per-grab policy.
    pub fn new(config: MacrochipConfig) -> TokenRingNetwork {
        TokenRingNetwork::with_burst(config, 1)
    }

    /// Builds the network with a custom token-hold burst limit (used by
    /// the burst-limit ablation).
    ///
    /// # Panics
    ///
    /// Panics if `max_burst` is zero.
    pub fn with_burst(config: MacrochipConfig, max_burst: usize) -> TokenRingNetwork {
        config.validate();
        assert!(max_burst > 0, "burst limit must be positive");
        let sites = config.grid.sites();
        let bw = config.channel_bytes_per_ns(LAMBDAS_PER_BUNDLE);
        let layout = config.layout;
        let site_rpos = (0..sites)
            .map(|i| layout.ring_index(config.grid.coord(netcore::SiteId::from_index(i))))
            .collect();
        let pos_site = (0..sites)
            .map(|p| {
                let (x, y) = layout.ring_coord(p);
                config.grid.site(x, y)
            })
            .collect();
        TokenRingNetwork {
            config,
            bundles: (0..sites)
                .map(|_| TxChannel::new(bw, 1)) // queue unused; kept for serialization math
                .collect(),
            queues: (0..sites * sites)
                .map(|_| std::collections::VecDeque::with_capacity(4))
                .collect(),
            waiting: vec![0; sites * sites.div_ceil(64)],
            words_per_dst: sites.div_ceil(64),
            hop: layout.ring_hop(),
            round_trip: layout.ring_round_trip(),
            site_rpos,
            pos_site,
            tokens: (0..sites)
                .map(|d| Token::Free {
                    pos: d % sites,
                    at: Time::ZERO,
                })
                .collect(),
            slab: PacketSlab::new(),
            max_burst,
            events: EventQueue::new(),
            delivered: Vec::with_capacity(256),
            stats: NetStats::new(),
            tracer: Tracer::disabled(),
        }
    }

    fn queue_index(&self, src: usize, dst: usize) -> usize {
        src * self.config.grid.sites() + dst
    }

    /// First instant at or after `now` when the free token for `dst`
    /// reaches ring position `target`.
    fn token_arrival(&self, dst: usize, target: usize, now: Time) -> Time {
        let Token::Free { pos, at } = self.tokens[dst] else {
            unreachable!("token_arrival requires a free token");
        };
        let first = at + self.hop * self.config.layout.ring_distance(pos, target) as u64;
        if first >= now {
            return first;
        }
        // The token kept circulating; advance whole laps until it next
        // passes the target.
        let rt = self.round_trip;
        let behind = now.saturating_since(first).as_ps();
        let laps = behind.div_ceil(rt.as_ps().max(1));
        first + Span::from_ps(rt.as_ps() * laps)
    }

    /// Claims the free token for `dst` on behalf of the site at ring
    /// position `pos` (no-op if already claimed).
    fn claim_token(&mut self, dst: usize, pos: usize, now: Time) {
        if matches!(self.tokens[dst], Token::Free { .. }) {
            let at = self.token_arrival(dst, pos, now);
            self.tokens[dst] = Token::Claimed;
            self.events.push(at, Ev::TokenArrive { dst, pos });
        }
    }

    /// Ring position of a site id.
    fn ring_pos(&self, site: netcore::SiteId) -> usize {
        self.site_rpos[site.index()]
    }

    fn set_waiting(&mut self, dst: usize, pos: usize) {
        self.waiting[dst * self.words_per_dst + (pos >> 6)] |= 1u64 << (pos & 63);
    }

    fn clear_waiting(&mut self, dst: usize, pos: usize) {
        self.waiting[dst * self.words_per_dst + (pos >> 6)] &= !(1u64 << (pos & 63));
    }

    /// First ring position with packets waiting for `dst`, searching
    /// cyclically from one hop past `pos` (a holder can re-grab only
    /// after a full lap, so `pos` itself is considered last). Bitmap
    /// scan: O(words), not a walk around the ring.
    fn next_waiting(&self, dst: usize, pos: usize) -> Option<usize> {
        let sites = self.config.grid.sites();
        let base = dst * self.words_per_dst;
        let start = netcore::fast_rem(pos + 1, sites);
        let start_word = start >> 6;
        // Bits at ring positions >= start.
        let mut w = start_word;
        let mut word = self.waiting[base + w] & (u64::MAX << (start & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words_per_dst {
                break;
            }
            word = self.waiting[base + w];
        }
        // Wrap: positions before `start`, ending at `pos` itself.
        let mut w = 0;
        loop {
            let mut word = self.waiting[base + w];
            if w == start_word {
                word &= !(u64::MAX << (start & 63));
            }
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            if w == start_word {
                return None;
            }
            w += 1;
        }
    }

    fn on_token_arrive(&mut self, dst: usize, pos: usize, t: Time) {
        let sites = self.config.grid.sites();
        let holder_site = self.pos_site[pos];
        let q_idx = self.queue_index(holder_site.index(), dst);
        self.tracer.emit(t, || TraceEvent::TokenAcquire {
            dst,
            holder: holder_site.index(),
        });

        // Data launched at the holder travels forward around the ring to
        // the destination; the hop count is fixed for the whole burst.
        let prop = self.hop * netcore::fast_rem(self.site_rpos[dst] + sites - pos, sites) as u64;

        // Transmit up to max_burst queued packets back to back on the
        // destination's bundle.
        let mut finish = t;
        let mut sent = 0;
        while sent < self.max_burst {
            let Some(pref) = self.queues[q_idx].pop_front() else {
                break;
            };
            let packet = self.slab.get_mut(pref);
            packet.tx_start = Some(finish);
            let bytes = packet.bytes;
            let ser = self.bundles[dst].serialization(bytes);
            finish += ser;
            self.slab.get_mut(pref).tx_end = Some(finish);
            self.events
                .push(finish + prop, Ev::Deliver { packet: pref });
            sent += 1;
        }

        if sent > 0 {
            // Re-injecting the token costs the holder a beat.
            finish += TOKEN_RELEASE;
        }
        self.tracer.emit(finish, || TraceEvent::TokenRelease {
            dst,
            holder: holder_site.index(),
        });

        if self.queues[q_idx].is_empty() {
            self.clear_waiting(dst, pos);
        }

        // Release the token and route it to the next requester (at least
        // one hop away: a site cannot re-grab without the token passing
        // through the ring again).
        match self.next_waiting(dst, pos) {
            Some(p) => {
                let k = if p > pos { p - pos } else { sites - pos + p };
                self.events.push(
                    finish + self.hop * k as u64,
                    Ev::TokenArrive { dst, pos: p },
                );
                // token stays Claimed
            }
            None => {
                self.tokens[dst] = Token::Free { pos, at: finish };
            }
        }
    }

    fn deliver(&mut self, pref: PacketRef, at: Time) {
        let mut packet = self.slab.take(pref);
        packet.delivered = Some(at);
        self.stats.on_deliver(&packet);
        self.tracer.emit(at, || TraceEvent::Deliver {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            latency: at.saturating_since(packet.created),
        });
        self.delivered.push(packet);
    }
}

impl Network for TokenRingNetwork {
    fn kind(&self) -> NetworkKind {
        NetworkKind::TokenRing
    }

    fn config(&self) -> &MacrochipConfig {
        &self.config
    }

    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet> {
        if packet.src == packet.dst {
            let mut packet = packet;
            packet.arb_start = Some(now);
            packet.tx_start = Some(now);
            packet.tx_end = Some(now);
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: packet.id.0,
                src: packet.src.index(),
                dst: packet.dst.index(),
                bytes: packet.bytes,
            });
            let pref = self.slab.insert(packet);
            self.events
                .push(now + self.config.cycle(), Ev::Deliver { packet: pref });
            self.stats.on_inject(now);
            return Ok(());
        }
        let dst = packet.dst.index();
        let q = self.queue_index(packet.src.index(), dst);
        if self.queues[q].len() >= self.config.queue_capacity {
            self.stats.on_reject();
            return Err(packet);
        }
        let pos = self.ring_pos(packet.src);
        let mut packet = packet;
        // Token arbitration starts the moment the packet queues: the wait
        // for the circulating token is this network's arbitration phase.
        packet.arb_start = Some(now);
        self.tracer.emit(now, || TraceEvent::Inject {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            bytes: packet.bytes,
        });
        let pref = self.slab.insert(packet);
        self.queues[q].push_back(pref);
        self.set_waiting(dst, pos);
        self.stats.on_inject(now);
        self.claim_token(dst, pos, now);
        Ok(())
    }

    fn next_event(&self) -> Option<Time> {
        self.events.peek_time()
    }

    fn advance(&mut self, now: Time) {
        while let Some((t, ev)) = self.events.pop_due(now) {
            match ev {
                Ev::TokenArrive { dst, pos } => self.on_token_arrive(dst, pos, t),
                Ev::Deliver { packet } => self.deliver(packet, t),
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.delivered)
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.delivered);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    fn last_event_time(&self) -> Option<Time> {
        self.events.last_popped()
    }

    fn supports_batched_advance(&self) -> bool {
        true
    }

    fn slab_stats(&self) -> Option<SlabStats> {
        Some(self.slab.stats())
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Degradation policy: token regeneration after loss. A laser loss or
    /// a link kill anchored at a destination kills that destination's
    /// circulating token pulse; the home site detects the missing token
    /// after a silent lap and re-injects it, costing two ring round trips
    /// (detection + regeneration) before arbitration resumes.
    fn apply_fault(&mut self, fault: NetFault, now: Time) -> FaultResponse {
        match fault {
            NetFault::LaserLoss { site } | NetFault::LinkKill { dst: site, .. } => {
                let dst = site.index();
                match self.tokens[dst] {
                    Token::Free { pos, .. } => {
                        let regen = self.config.layout.ring_round_trip() * 2;
                        self.tokens[dst] = Token::Free {
                            pos,
                            at: now + regen,
                        };
                        FaultResponse::handled("token-regen")
                    }
                    // A claimed token is an in-flight grant; the pulse
                    // already left the ring segment and survives.
                    Token::Claimed => FaultResponse::handled("token-in-transit"),
                }
            }
            // The regenerated token is already live; repairs are no-ops.
            NetFault::LaserRestore { .. } | NetFault::LinkRepair { .. } => {
                FaultResponse::handled("token-live")
            }
            NetFault::SiteKill { .. } => FaultResponse::unhandled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{MessageKind, PacketId, SiteId};

    fn net() -> TokenRingNetwork {
        TokenRingNetwork::new(MacrochipConfig::scaled())
    }

    fn data(id: u64, src: SiteId, dst: SiteId, at: Time) -> Packet {
        Packet::new(PacketId(id), src, dst, 64, MessageKind::Data, at)
    }

    fn run_until_idle(net: &mut TokenRingNetwork) {
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
    }

    #[test]
    fn single_transfer_completes() {
        let mut n = net();
        let g = n.config.grid;
        n.inject(data(0, g.site(1, 0), g.site(5, 3), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 1);
        // Token wait (< one round trip) + 0.2 ns serialization + flight.
        let lat = done[0].latency().unwrap().as_ns_f64();
        assert!(lat < 16.0 + 0.2 + 16.0, "latency {lat}");
    }

    #[test]
    fn reacquiring_the_token_costs_a_round_trip() {
        // The paper's key §6.1 observation: one-to-one patterns transmit a
        // packet in one cycle but wait 80 cycles (16 ns) for the token.
        let mut n = net();
        let g = n.config.grid;
        let (src, dst) = (g.site(0, 0), g.site(1, 0));
        n.inject(data(0, src, dst, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let t1 = n.drain_delivered()[0].delivered.unwrap();
        // Inject a second packet right after the first finished: the token
        // has been released and must circulate back.
        n.inject(data(1, src, dst, t1), t1).unwrap();
        run_until_idle(&mut n);
        let t2 = n.drain_delivered()[0].delivered.unwrap();
        let gap = t2.saturating_since(t1).as_ns_f64();
        assert!(gap >= 15.9, "token reacquisition took only {gap} ns");
    }

    #[test]
    fn token_moves_to_next_requester_without_full_lap() {
        let mut n = net();
        let g = n.config.grid;
        let dst = g.site(7, 7);
        // Two requesters adjacent on the ring: (0,0) is ring pos 0, (1,0)
        // is ring pos 1.
        n.inject(data(0, g.site(0, 0), dst, Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, g.site(1, 0), dst, Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 2);
        let a = done[0].delivered.unwrap();
        let b = done[1].delivered.unwrap();
        // The second grab is one hop + one serialization after the first,
        // not a full 16 ns lap.
        let gap = b.saturating_since(a).as_ns_f64().abs();
        assert!(gap < 2.0, "gap {gap}");
    }

    #[test]
    fn wide_bundle_serializes_fast() {
        let n = net();
        // 64 B at 320 B/ns = 0.2 ns = one core cycle, as the paper says.
        assert_eq!(n.bundles[0].serialization(64), Span::from_ps(200));
    }

    #[test]
    fn distinct_destinations_have_independent_tokens() {
        let mut n = net();
        let g = n.config.grid;
        let src = g.site(0, 0);
        n.inject(data(0, src, g.site(3, 3), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, src, g.site(4, 4), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 2);
    }

    #[test]
    fn queue_capacity_backpressures() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 1));
        let cap = n.config.queue_capacity;
        for i in 0..cap as u64 {
            n.inject(data(i, a, b, Time::ZERO), Time::ZERO).unwrap();
        }
        assert!(n.inject(data(99, a, b, Time::ZERO), Time::ZERO).is_err());
    }

    #[test]
    fn burst_limit_bounds_hold_time() {
        let mut n = TokenRingNetwork::with_burst(MacrochipConfig::scaled(), 4);
        let g = n.config.grid;
        let (a, b) = (g.site(0, 0), g.site(1, 1));
        for i in 0..8u64 {
            n.inject(data(i, a, b, Time::ZERO), Time::ZERO).unwrap();
        }
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 8);
        // Packets 0-3 go in the first grab; 4-7 wait a full lap.
        let t3 = done[3].delivered.unwrap();
        let t4 = done[4].delivered.unwrap();
        assert!(t4.saturating_since(t3).as_ns_f64() > 10.0);
    }

    #[test]
    fn lost_token_regenerates_after_two_laps() {
        let mut n = net();
        let g = n.config.grid;
        let (src, dst) = (g.site(1, 0), g.site(5, 3));
        // Healthy baseline latency for this pair.
        n.inject(data(0, src, dst, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let healthy = n.drain_delivered()[0].latency().unwrap();

        // Fresh network: lose the token before anyone requests it.
        let mut n = net();
        let r = n.apply_fault(NetFault::LaserLoss { site: dst }, Time::ZERO);
        assert!(r.handled);
        assert_eq!(r.action, "token-regen");
        n.inject(data(0, src, dst, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let degraded = n.drain_delivered()[0].latency().unwrap();
        let penalty = (degraded - healthy).as_ns_f64();
        // Two 16 ns laps of detection + regeneration, within a lap's slack
        // for where the regenerated token restarts.
        assert!((16.0..=48.0).contains(&penalty), "penalty {penalty} ns");
    }

    #[test]
    fn claimed_token_survives_the_fault() {
        let mut n = net();
        let g = n.config.grid;
        let (src, dst) = (g.site(0, 0), g.site(1, 1));
        n.inject(data(0, src, dst, Time::ZERO), Time::ZERO).unwrap();
        // The claim is in flight; the fault must not strand the requester.
        let r = n.apply_fault(NetFault::LaserLoss { site: dst }, Time::ZERO);
        assert_eq!(r.action, "token-in-transit");
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 1);
    }

    #[test]
    fn loopback_takes_one_cycle() {
        let mut n = net();
        let s = n.config.grid.site(6, 1);
        n.inject(data(0, s, s, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        assert_eq!(
            n.drain_delivered()[0].latency().unwrap(),
            Span::from_ps(200)
        );
    }
}
