//! The two-level hierarchical network (beyond the paper).
//!
//! The five paper architectures provision optics against the full site
//! count, so their component counts and laser power grow with S² — the
//! 8×8 ceiling the paper itself acknowledges. Following the HERMES line
//! of work, this design splits the macrochip into c×c *clusters* (4×4
//! for every power-of-two side) and provisions each level separately:
//!
//! * **Intra-cluster**: one shared serpentine broadcast bundle per
//!   cluster. A transmission holds the cluster's broadcast grant
//!   exclusively (the auditor's token invariant, keyed by cluster id),
//!   serializes at the bundle bandwidth, and propagates along the
//!   serpentine at one site pitch per hop.
//! * **Inter-cluster**: one electronic *bridge* per cluster (its
//!   top-left site) sources a dedicated WDM point-to-point link to every
//!   other bridge. A cross-cluster packet rides its source ring to the
//!   bridge, crosses the bridge-to-bridge link, and rides the
//!   destination ring from that bridge to its destination. Each bridge
//!   relay is an electronic store-and-forward: it emits a `Hop` trace
//!   event and accounts the packet's bytes as routed bytes, which both
//!   the invariant auditor (bridge-buffer byte conservation) and the
//!   energy model (router J/B) consume.
//!
//! Head-of-line flow control keeps bridge buffers bounded: a ring does
//! not grant a bridge-bound transmission while that bridge link's queue
//! is full, so ring backpressure propagates to injection instead of
//! growing unbounded bridge buffers.

use desim::{EventQueue, Span, Time, TraceEvent, Tracer};
use netcore::{
    FaultResponse, MacrochipConfig, NetFault, NetStats, Network, NetworkKind, Packet, PacketRef,
    PacketSlab, SiteId, SlabStats, TxChannel,
};
use std::collections::VecDeque;

/// Point-to-point wavelengths provisioned per in-cluster destination;
/// a c×c cluster's shared bundle carries `2·c²` wavelengths (80 GB/s
/// for the scaled 4×4 cluster).
pub const LAMBDAS_PER_CLUSTER_DEST: usize = 2;

#[derive(Debug)]
enum Ev {
    /// A cluster ring finished serializing; release the grant and pump.
    RingFree { cluster: usize },
    /// A ring transmission's last bit reached its target. `relay` means
    /// the target is the egress bridge, not the final destination.
    RingArrive { packet: PacketRef, relay: bool },
    /// A bridge link finished serializing; pump it and its source ring.
    LinkFree { link: usize },
    /// A packet's last bit reached the ingress bridge.
    LinkArrive { packet: PacketRef },
    /// Single-cycle intra-site loop-back.
    Deliver { packet: PacketRef },
}

/// One cluster's shared broadcast ring: an exclusive grant, a FIFO of
/// pending transmissions, and the bundle bandwidth.
#[derive(Debug)]
struct Ring {
    queue: VecDeque<PacketRef>,
    busy: bool,
    bytes_per_ns: f64,
}

/// The hierarchical two-level network: per-cluster broadcast rings plus
/// an inter-cluster bridge backbone.
///
/// # Example
///
/// ```
/// use desim::Time;
/// use netcore::{MacrochipConfig, MessageKind, Network, Packet, PacketId};
/// use networks::HierarchicalNetwork;
///
/// let config = MacrochipConfig::scaled();
/// let mut net = HierarchicalNetwork::new(config);
/// let (a, b) = (config.grid.site(0, 0), config.grid.site(7, 7));
/// net.inject(Packet::new(PacketId(0), a, b, 64, MessageKind::Data, Time::ZERO),
///            Time::ZERO).unwrap();
/// net.advance(Time::from_ns(50));
/// assert_eq!(net.drain_delivered().len(), 1);
/// ```
pub struct HierarchicalNetwork {
    config: MacrochipConfig,
    /// Cluster side length `c` and clusters per grid side.
    cluster_side: usize,
    clusters_per_side: usize,
    /// Physical length of a ring's wrap edge (last serpentine site back
    /// to the first), in site pitches.
    wrap_pitches: usize,
    rings: Vec<Ring>,
    /// Bridge-to-bridge links, indexed `src_cluster * k + dst_cluster`.
    links: Vec<TxChannel<PacketRef>>,
    /// Per-link admission count: packets granted toward (or injected at)
    /// a bridge that have not yet begun transmitting on its link. Bounded
    /// by `queue_capacity`, this is the bridge-buffer occupancy limit —
    /// a ring withholds a grant (and a bridge source is backpressured)
    /// while the bridge is full, so in-flight ring transmissions always
    /// find buffer space when they arrive.
    link_load: Vec<usize>,
    prop: crate::geom::PropByHops,
    ring_bw: f64,
    link_bw: f64,
    slab: PacketSlab,
    events: EventQueue<Ev>,
    delivered: Vec<Packet>,
    stats: NetStats,
    tracer: Tracer,
}

impl HierarchicalNetwork {
    /// Builds the network for `config`.
    pub fn new(config: MacrochipConfig) -> HierarchicalNetwork {
        config.validate();
        let cluster_side = config.layout.cluster_side();
        // `Layout::cluster_side` only returns divisors of the side, so
        // this division is exact; assert it anyway — a truncating split
        // here would silently orphan every site in the ragged edge.
        assert!(
            config.grid.side().is_multiple_of(cluster_side),
            "grid side {} is not tileable by {}x{} clusters",
            config.grid.side(),
            cluster_side,
            cluster_side
        );
        let clusters_per_side = config.grid.side() / cluster_side;
        let clusters = clusters_per_side * clusters_per_side;
        debug_assert_eq!(clusters, config.layout.clusters());
        let ring_bw =
            config.channel_bytes_per_ns(LAMBDAS_PER_CLUSTER_DEST * cluster_side * cluster_side);
        let link_bw = config.channel_bytes_per_ns(config.wavelengths_per_waveguide);
        // Local coordinate of the serpentine's last site: (0, c-1) for
        // even c, (c-1, c-1) for odd c; the wrap edge runs from there
        // back to (0, 0).
        let c = cluster_side;
        let last_x = if c.is_multiple_of(2) { 0 } else { c - 1 };
        let wrap_pitches = last_x + (c - 1);
        HierarchicalNetwork {
            config,
            cluster_side,
            clusters_per_side,
            wrap_pitches,
            rings: (0..clusters)
                .map(|_| Ring {
                    queue: VecDeque::new(),
                    busy: false,
                    bytes_per_ns: ring_bw,
                })
                .collect(),
            links: (0..clusters * clusters)
                .map(|_| TxChannel::new(link_bw, config.queue_capacity))
                .collect(),
            link_load: vec![0; clusters * clusters],
            prop: crate::geom::PropByHops::new(&config.layout),
            ring_bw,
            link_bw,
            slab: PacketSlab::new(),
            events: EventQueue::new(),
            delivered: Vec::with_capacity(256),
            stats: NetStats::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// The cluster a site belongs to.
    fn cluster_of(&self, s: SiteId) -> usize {
        let (x, y) = self.config.grid.coord(s);
        (y / self.cluster_side) * self.clusters_per_side + (x / self.cluster_side)
    }

    /// The bridge site of a cluster (the sub-grid's top-left corner).
    pub fn bridge_site(&self, cluster: usize) -> SiteId {
        let cx = cluster % self.clusters_per_side;
        let cy = cluster / self.clusters_per_side;
        self.config
            .grid
            .site(cx * self.cluster_side, cy * self.cluster_side)
    }

    /// Position of a site in its cluster's serpentine broadcast ring.
    fn local_ring_index(&self, s: SiteId) -> usize {
        let c = self.cluster_side;
        let (x, y) = self.config.grid.coord(s);
        let (lx, ly) = (x % c, y % c);
        let x_in_row = if ly % 2 == 0 { lx } else { c - 1 - lx };
        ly * c + x_in_row
    }

    /// Forward path length from `from` to `to` along the cluster's
    /// serpentine, in site pitches. Interior steps are one pitch each;
    /// the wrap edge is the return waveguide from the serpentine's last
    /// site back to its first, modeled at its physical Manhattan length
    /// (`c - 1` pitches for an even cluster side) — unlike the full-grid
    /// token ring, whose wrap endpoints are torus-adjacent, a cluster's
    /// wrap spans real substrate distance and must cost flight time for
    /// the auditor's torus-floor invariant to hold.
    fn ring_pitches(&self, from: SiteId, to: SiteId) -> usize {
        let m = self.cluster_side * self.cluster_side;
        let (a, b) = (self.local_ring_index(from), self.local_ring_index(to));
        if b >= a {
            b - a
        } else {
            (m - 1 - a) + self.wrap_pitches + b
        }
    }

    fn link_index(&self, src_cluster: usize, dst_cluster: usize) -> usize {
        src_cluster * self.rings.len() + dst_cluster
    }

    /// Grants the ring's head transmission if the ring is idle and, for a
    /// bridge-bound packet, its egress link can buffer it (head-of-line
    /// flow control).
    fn pump_ring(&mut self, cluster: usize, now: Time) {
        if self.rings[cluster].busy {
            return;
        }
        let Some(&pref) = self.rings[cluster].queue.front() else {
            return;
        };
        let (src, dst, bytes) = {
            let p = self.slab.get_mut(pref);
            (p.src, p.dst, p.bytes)
        };
        let (sc, dc) = (self.cluster_of(src), self.cluster_of(dst));
        // Which leg is this? On the source ring the target is the final
        // destination (intra-cluster) or the egress bridge; on the
        // destination ring the bridge launches the final leg.
        let (launcher, target, relay) = if cluster == sc {
            if dc == sc {
                (src, dst, false)
            } else {
                (src, self.bridge_site(sc), true)
            }
        } else {
            (self.bridge_site(dc), dst, false)
        };
        if relay && self.link_load[self.link_index(sc, dc)] >= self.config.queue_capacity {
            // Head-of-line stall: hold the grant until the bridge has
            // buffer space (LinkFree re-pumps this ring).
            return;
        }
        self.rings[cluster].queue.pop_front();
        self.rings[cluster].busy = true;
        if relay {
            let link = self.link_index(sc, dc);
            self.link_load[link] += 1;
        }
        let ser = Span::from_ns_f64(f64::from(bytes) / self.rings[cluster].bytes_per_ns);
        let finish = now + ser;
        {
            let p = self.slab.get_mut(pref);
            if p.arb_start.is_none() {
                p.arb_start = Some(now);
            }
            if p.tx_start.is_none() {
                p.tx_start = Some(now);
            }
            p.tx_end = Some(finish);
        }
        self.tracer.emit(now, || TraceEvent::TokenAcquire {
            dst: cluster,
            holder: launcher.index(),
        });
        // The release is emitted now, stamped with the grant's known end
        // time, so acquire/release always pair in the trace stream even
        // when a saturated run is cut off before `RingFree` pops.
        self.tracer.emit(finish, || TraceEvent::TokenRelease {
            dst: cluster,
            holder: launcher.index(),
        });
        let prop = self.config.layout.hop_delay() * self.ring_pitches(launcher, target) as u64;
        self.events.push(finish, Ev::RingFree { cluster });
        self.events.push(
            finish + prop,
            Ev::RingArrive {
                packet: pref,
                relay,
            },
        );
    }

    /// Starts the link's next transmission if it is idle.
    fn pump_link(&mut self, link: usize, now: Time) {
        if let Some((pref, finish)) = self.links[link].begin_if_ready(now) {
            self.link_load[link] -= 1;
            let (src_c, dst_c) = (link / self.rings.len(), link % self.rings.len());
            let packet = self.slab.get_mut(pref);
            // First-set-wins: a bridge-sourced packet starts its wire
            // time here; a relayed one already started it on its ring.
            if packet.arb_start.is_none() {
                packet.arb_start = Some(now);
            }
            if packet.tx_start.is_none() {
                packet.tx_start = Some(now);
            }
            packet.tx_end = Some(finish);
            let prop = self.prop.delay(
                self.config.grid.coord(self.bridge_site(src_c)),
                self.config.grid.coord(self.bridge_site(dst_c)),
            );
            self.events.push(finish, Ev::LinkFree { link });
            self.events
                .push(finish + prop, Ev::LinkArrive { packet: pref });
        }
    }

    /// An electronic bridge stores and forwards the packet: routed-bytes
    /// accounting plus the `Hop` trace event the auditor reconciles.
    fn relay_at(&mut self, pref: PacketRef, bridge: SiteId, at: Time) {
        let p = self.slab.get_mut(pref);
        p.routed_bytes += p.bytes;
        let id = p.id.0;
        self.tracer.emit(at, || TraceEvent::Hop {
            packet: id,
            at: bridge.index(),
        });
    }

    fn deliver(&mut self, pref: PacketRef, at: Time) {
        let mut packet = self.slab.take(pref);
        packet.delivered = Some(at);
        self.stats.on_deliver(&packet);
        self.tracer.emit(at, || TraceEvent::Deliver {
            packet: packet.id.0,
            src: packet.src.index(),
            dst: packet.dst.index(),
            latency: at.saturating_since(packet.created),
        });
        self.delivered.push(packet);
    }

    fn on_ring_arrive(&mut self, pref: PacketRef, relay: bool, at: Time) {
        if !relay {
            self.deliver(pref, at);
            return;
        }
        let (src, dst, bytes) = {
            let p = self.slab.get_mut(pref);
            (p.src, p.dst, p.bytes)
        };
        let (sc, dc) = (self.cluster_of(src), self.cluster_of(dst));
        let bridge = self.bridge_site(sc);
        self.relay_at(pref, bridge, at);
        let link = self.link_index(sc, dc);
        self.links[link]
            .try_enqueue(pref, bytes)
            .unwrap_or_else(|_| panic!("ring granted into a full bridge link"));
        self.pump_link(link, at);
    }

    fn on_link_arrive(&mut self, pref: PacketRef, at: Time) {
        let dst = self.slab.get_mut(pref).dst;
        let dc = self.cluster_of(dst);
        let bridge = self.bridge_site(dc);
        if dst == bridge {
            // The ingress bridge is the destination: no second relay.
            self.deliver(pref, at);
            return;
        }
        self.relay_at(pref, bridge, at);
        self.rings[dc].queue.push_back(pref);
        self.pump_ring(dc, at);
    }
}

impl Network for HierarchicalNetwork {
    fn kind(&self) -> NetworkKind {
        NetworkKind::Hierarchical
    }

    fn config(&self) -> &MacrochipConfig {
        &self.config
    }

    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet> {
        if packet.src == packet.dst {
            // Single-cycle intra-site loop-back.
            let mut packet = packet;
            packet.arb_start = Some(now);
            packet.tx_start = Some(now);
            packet.tx_end = Some(now);
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: packet.id.0,
                src: packet.src.index(),
                dst: packet.dst.index(),
                bytes: packet.bytes,
            });
            let pref = self.slab.insert(packet);
            self.events
                .push(now + self.config.cycle(), Ev::Deliver { packet: pref });
            self.stats.on_inject(now);
            return Ok(());
        }
        let sc = self.cluster_of(packet.src);
        let (src_is_bridge, dc) = (
            packet.src == self.bridge_site(sc),
            self.cluster_of(packet.dst),
        );
        let trace_fields = self.tracer.is_enabled().then(|| {
            (
                packet.id.0,
                packet.src.index(),
                packet.dst.index(),
                packet.bytes,
            )
        });
        // A bridge site sending cross-cluster skips its own ring and
        // queues straight onto the bridge link (no relay hop: the packet
        // originates in the bridge's buffers).
        if src_is_bridge && sc != dc {
            let link = self.link_index(sc, dc);
            if self.link_load[link] >= self.config.queue_capacity {
                self.stats.on_reject();
                return Err(packet);
            }
            self.link_load[link] += 1;
            let bytes = packet.bytes;
            let pref = self.slab.insert(packet);
            {
                let p = self.slab.get_mut(pref);
                p.arb_start = Some(now);
            }
            self.links[link]
                .try_enqueue(pref, bytes)
                .expect("checked not full");
            self.stats.on_inject(now);
            if let Some((id, src, dst, bytes)) = trace_fields {
                self.tracer.emit(now, || TraceEvent::Inject {
                    packet: id,
                    src,
                    dst,
                    bytes,
                });
            }
            self.pump_link(link, now);
            return Ok(());
        }
        if self.rings[sc].queue.len() >= self.config.queue_capacity {
            self.stats.on_reject();
            return Err(packet);
        }
        let pref = self.slab.insert(packet);
        self.rings[sc].queue.push_back(pref);
        self.stats.on_inject(now);
        if let Some((id, src, dst, bytes)) = trace_fields {
            self.tracer.emit(now, || TraceEvent::Inject {
                packet: id,
                src,
                dst,
                bytes,
            });
        }
        self.pump_ring(sc, now);
        Ok(())
    }

    fn next_event(&self) -> Option<Time> {
        self.events.peek_time()
    }

    fn advance(&mut self, now: Time) {
        while let Some((t, ev)) = self.events.pop_due(now) {
            match ev {
                Ev::RingFree { cluster } => {
                    // The matching TokenRelease was emitted at grant time.
                    self.rings[cluster].busy = false;
                    self.pump_ring(cluster, t);
                }
                Ev::RingArrive { packet, relay } => self.on_ring_arrive(packet, relay, t),
                Ev::LinkFree { link } => {
                    self.pump_link(link, t);
                    // A slot freed: the source ring's head may have been
                    // stalled on this link.
                    self.pump_ring(link / self.rings.len(), t);
                }
                Ev::LinkArrive { packet } => self.on_link_arrive(packet, t),
                Ev::Deliver { packet } => self.deliver(packet, t),
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.delivered)
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.delivered);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    fn last_event_time(&self) -> Option<Time> {
        self.events.last_popped()
    }

    fn supports_batched_advance(&self) -> bool {
        true
    }

    fn slab_stats(&self) -> Option<SlabStats> {
        Some(self.slab.stats())
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Degradation policy: a killed waveguide inside a cluster (or a lost
    /// laser) halves that cluster's shared bundle; a killed waveguide
    /// between clusters halves the bridge link between them. Site kills
    /// fall back to the resilience wrapper's absorption policy.
    fn apply_fault(&mut self, fault: NetFault, _now: Time) -> FaultResponse {
        match fault {
            NetFault::LinkKill { src, dst } => {
                let (sc, dc) = (self.cluster_of(src), self.cluster_of(dst));
                if sc == dc {
                    self.rings[sc].bytes_per_ns = self.ring_bw / 2.0;
                } else {
                    let link = self.link_index(sc, dc);
                    self.links[link].set_bytes_per_ns(self.link_bw / 2.0);
                }
                FaultResponse::handled("spare-wavelength")
            }
            NetFault::LinkRepair { src, dst } => {
                let (sc, dc) = (self.cluster_of(src), self.cluster_of(dst));
                if sc == dc {
                    self.rings[sc].bytes_per_ns = self.ring_bw;
                } else {
                    let link = self.link_index(sc, dc);
                    self.links[link].set_bytes_per_ns(self.link_bw);
                }
                FaultResponse::handled("full-bandwidth")
            }
            NetFault::LaserLoss { site } => {
                let sc = self.cluster_of(site);
                self.rings[sc].bytes_per_ns = self.ring_bw / 2.0;
                FaultResponse::handled("spare-wavelength")
            }
            NetFault::LaserRestore { site } => {
                let sc = self.cluster_of(site);
                self.rings[sc].bytes_per_ns = self.ring_bw;
                FaultResponse::handled("full-bandwidth")
            }
            NetFault::SiteKill { .. } => FaultResponse::unhandled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{MessageKind, PacketId};

    fn net() -> HierarchicalNetwork {
        HierarchicalNetwork::new(MacrochipConfig::scaled())
    }

    fn data(id: u64, src: SiteId, dst: SiteId, at: Time) -> Packet {
        Packet::new(PacketId(id), src, dst, 64, MessageKind::Data, at)
    }

    fn run_until_idle(net: &mut HierarchicalNetwork) {
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
    }

    #[test]
    fn cluster_geometry_at_8x8() {
        let n = net();
        let g = n.config.grid;
        assert_eq!(n.rings.len(), 4);
        assert_eq!(n.cluster_of(g.site(0, 0)), 0);
        assert_eq!(n.cluster_of(g.site(3, 3)), 0);
        assert_eq!(n.cluster_of(g.site(4, 0)), 1);
        assert_eq!(n.cluster_of(g.site(0, 4)), 2);
        assert_eq!(n.cluster_of(g.site(7, 7)), 3);
        assert_eq!(n.bridge_site(0), g.site(0, 0));
        assert_eq!(n.bridge_site(3), g.site(4, 4));
    }

    #[test]
    fn local_ring_is_serpentine_within_the_cluster() {
        let n = net();
        let g = n.config.grid;
        // Cluster 3's sub-grid starts at (4,4); its serpentine reverses
        // every local row.
        assert_eq!(n.local_ring_index(g.site(4, 4)), 0);
        assert_eq!(n.local_ring_index(g.site(7, 4)), 3);
        assert_eq!(n.local_ring_index(g.site(7, 5)), 4);
        assert_eq!(n.local_ring_index(g.site(4, 5)), 7);
        // Consecutive ring positions are Manhattan-adjacent.
        for i in 0..15 {
            let find = |idx: usize| {
                g.iter()
                    .find(|&s| n.cluster_of(s) == 3 && n.local_ring_index(s) == idx)
                    .unwrap()
            };
            let (a, b) = (find(i), find(i + 1));
            let (ax, ay) = g.coord(a);
            let (bx, by) = g.coord(b);
            assert_eq!(ax.abs_diff(bx) + ay.abs_diff(by), 1, "ring step {i}");
        }
    }

    #[test]
    fn intra_cluster_latency_is_grant_serialization_and_ring_flight() {
        let mut n = net();
        let g = n.config.grid;
        // (1,0) → (2,0): both in cluster 0; ring indices 1 → 2, one hop.
        n.inject(data(0, g.site(1, 0), g.site(2, 0), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 1);
        // 64 B at 80 B/ns = 0.8 ns serialization + 1 ring hop (0.25 ns).
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(1.05));
    }

    #[test]
    fn inter_cluster_crosses_both_rings_and_the_bridge_link() {
        let mut n = net();
        let g = n.config.grid;
        // (1,0) in cluster 0 → (5,0) in cluster 1.
        n.inject(data(0, g.site(1, 0), g.site(5, 0), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 1);
        // Leg 1: ring 0, (1,0) → bridge (0,0): 0.8 ns ser + a forward
        //   path of 14 interior steps plus the 3-pitch wrap edge
        //   (17 pitches, 4.25 ns).
        // Leg 2: link 0→1, 64 B at 20 B/ns = 3.2 ns + 4 hops prop (1 ns).
        // Leg 3: ring 1, bridge (4,0) → (5,0): 0.8 ns ser + 1 pitch.
        let expect = 0.8 + 17.0 * 0.25 + 3.2 + 4.0 * 0.25 + 0.8 + 0.25;
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(expect));
        // Two electronic relays: 128 routed bytes.
        assert_eq!(n.stats().routed_bytes(), 128);
    }

    #[test]
    fn loopback_takes_one_cycle() {
        let mut n = net();
        let s = n.config.grid.site(2, 2);
        n.inject(data(0, s, s, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done[0].latency().unwrap(), Span::from_ps(200));
    }

    #[test]
    fn ring_grants_are_exclusive_and_serialize() {
        let mut n = net();
        let g = n.config.grid;
        // Two same-cluster transmissions from different sources share the
        // cluster 0 bundle and must serialize on it.
        n.inject(data(0, g.site(1, 0), g.site(2, 0), Time::ZERO), Time::ZERO)
            .unwrap();
        n.inject(data(1, g.site(3, 0), g.site(2, 1), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done.len(), 2);
        let t0 = done[0].tx_start.unwrap();
        let t1 = done[1].tx_start.unwrap();
        // The second grant waits out the first's 0.8 ns serialization.
        assert_eq!(t1.saturating_since(t0), Span::from_ns_f64(0.8));
    }

    #[test]
    fn backpressure_after_ring_queue_fills() {
        let mut n = net();
        let g = n.config.grid;
        let cap = n.config.queue_capacity;
        // One grant in flight plus a full FIFO.
        for i in 0..=cap as u64 {
            n.inject(data(i, g.site(1, 0), g.site(2, 0), Time::ZERO), Time::ZERO)
                .unwrap();
        }
        let err = n.inject(data(99, g.site(3, 1), g.site(2, 0), Time::ZERO), Time::ZERO);
        assert!(err.is_err());
        assert_eq!(n.stats().rejected_packets(), 1);
    }

    #[test]
    fn bridge_source_skips_its_own_ring() {
        let mut n = net();
        let g = n.config.grid;
        // Bridge of cluster 0 is (0,0); destination bridge of cluster 1.
        n.inject(data(0, g.site(0, 0), g.site(4, 0), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        // Link only: 3.2 ns ser + 4 hops (1 ns); no ring legs, no relays.
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(4.2));
        assert_eq!(n.stats().routed_bytes(), 0);
    }

    #[test]
    fn killed_intra_cluster_link_halves_the_bundle() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(1, 0), g.site(2, 0));
        let r = n.apply_fault(NetFault::LinkKill { src: a, dst: b }, Time::ZERO);
        assert!(r.handled);
        n.inject(data(0, a, b, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        // 64 B at 40 B/ns = 1.6 ns + one ring hop.
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(1.85));
        n.apply_fault(NetFault::LinkRepair { src: a, dst: b }, Time::ZERO);
        let t = Time::from_us(1);
        n.inject(data(1, a, b, t), t).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(1.05));
    }

    #[test]
    fn killed_bridge_link_degrades_cross_cluster_traffic() {
        let mut n = net();
        let g = n.config.grid;
        let (a, b) = (g.site(1, 0), g.site(5, 0));
        n.apply_fault(NetFault::LinkKill { src: a, dst: b }, Time::ZERO);
        n.inject(data(0, a, b, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let done = n.drain_delivered();
        // The link leg doubles: 6.4 ns instead of 3.2 ns.
        let expect = 0.8 + 17.0 * 0.25 + 6.4 + 1.0 + 0.8 + 0.25;
        assert_eq!(done[0].latency().unwrap(), Span::from_ns_f64(expect));
    }

    #[test]
    fn works_at_16x16() {
        let mut n = HierarchicalNetwork::new(MacrochipConfig::with_side(16));
        let g = n.config.grid;
        assert_eq!(n.rings.len(), 16);
        n.inject(
            data(0, g.site(0, 0), g.site(15, 15), Time::ZERO),
            Time::ZERO,
        )
        .unwrap();
        n.inject(data(1, g.site(2, 2), g.site(3, 3), Time::ZERO), Time::ZERO)
            .unwrap();
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 2);
        assert_eq!(n.stats().delivered_packets(), 2);
    }

    #[test]
    fn stats_count_deliveries() {
        let mut n = net();
        let g = n.config.grid;
        for i in 0..4u64 {
            n.inject(
                data(i, g.site(1, 1), g.site(6, 6), Time::from_ns(i)),
                Time::from_ns(i),
            )
            .unwrap();
        }
        run_until_idle(&mut n);
        assert_eq!(n.stats().delivered_packets(), 4);
        assert_eq!(n.stats().delivered_bytes(), 256);
        assert_eq!(n.drain_delivered().len(), 4);
    }
}
