//! The optical component property table (paper Table 1, §2).
//!
//! Component parameters are the paper's extrapolations to the 2014–2015
//! time frame: a 20 Gb/s wavelength channel, ring-resonator modulators and
//! filters, optical proximity communication (OPxC) couplers, and
//! quasi-broadband ring switches.

use crate::units::{Db, FemtojoulesPerBit, Milliwatts};

/// How a component consumes energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnergyCost {
    /// Consumed per transmitted bit, only while data moves.
    Dynamic(FemtojoulesPerBit),
    /// Amortized per bit at full line rate but burned continuously.
    Static(FemtojoulesPerBit),
    /// Fixed standing power (e.g. ring tuning heaters, switch bias).
    Standing(Milliwatts),
    /// No meaningful energy cost at the architecture level.
    Negligible,
}

/// One optical component class of the macrochip technology (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Carrier-depletion ring-resonator EO modulator (20 Gb/s).
    Modulator,
    /// A modulator ring that is tuned off resonance (pass-by loss only).
    ModulatorOffResonance,
    /// Optical proximity coupler between stacked chips / substrate layers.
    Opxc,
    /// One centimeter of low-loss global waveguide on the routing layer.
    WaveguidePerCm,
    /// Ring-resonator drop filter: loss seen by wavelengths passing through.
    DropFilterPass,
    /// Ring-resonator drop filter: loss on the dropped (selected) wavelength.
    DropFilterDrop,
    /// Cascaded-ring WDM multiplexer, worst-case channel insertion loss.
    Multiplexer,
    /// Waveguide photodetector + amplifier chain (-21 dBm sensitivity).
    Receiver,
    /// Quasi-broadband 1×2 ring-resonator switch.
    Switch,
    /// Off-chip CW DFB laser feeding one wavelength.
    Laser,
    /// Y-splitter dividing power between two waveguides (3 dB ideal).
    Splitter,
}

/// Energy and signal-loss characteristics of one [`Component`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentProps {
    /// Energy cost attributed to the component.
    pub energy: EnergyCost,
    /// Optical insertion loss added to a signal traversing the component.
    pub insertion_loss: Db,
}

impl Component {
    /// Every component class, in Table 1 order (for reporting).
    pub const ALL: [Component; 11] = [
        Component::Modulator,
        Component::ModulatorOffResonance,
        Component::Opxc,
        Component::WaveguidePerCm,
        Component::DropFilterPass,
        Component::DropFilterDrop,
        Component::Multiplexer,
        Component::Receiver,
        Component::Switch,
        Component::Laser,
        Component::Splitter,
    ];

    /// The paper's projected properties for this component (Table 1).
    pub fn props(self) -> ComponentProps {
        use Component::*;
        match self {
            Modulator => ComponentProps {
                energy: EnergyCost::Dynamic(FemtojoulesPerBit::new(35.0)),
                insertion_loss: Db::new(4.0),
            },
            // "When disabled, ring loss is significantly smaller at 0.1 dB."
            ModulatorOffResonance => ComponentProps {
                energy: EnergyCost::Negligible,
                insertion_loss: Db::new(0.1),
            },
            Opxc => ComponentProps {
                energy: EnergyCost::Negligible,
                insertion_loss: Db::new(1.2),
            },
            // Global waveguides: < 0.1 dB/cm; local: < 0.5 dB/cm. We expose
            // the local figure here and let link budgets use worst-case
            // end-to-end global loss (6 dB) directly.
            WaveguidePerCm => ComponentProps {
                energy: EnergyCost::Negligible,
                insertion_loss: Db::new(0.5),
            },
            DropFilterPass => ComponentProps {
                energy: EnergyCost::Standing(Milliwatts::new(0.1)),
                insertion_loss: Db::new(0.1),
            },
            DropFilterDrop => ComponentProps {
                energy: EnergyCost::Standing(Milliwatts::new(0.1)),
                insertion_loss: Db::new(1.5),
            },
            Multiplexer => ComponentProps {
                energy: EnergyCost::Standing(Milliwatts::new(0.1)),
                insertion_loss: Db::new(2.5),
            },
            Receiver => ComponentProps {
                energy: EnergyCost::Dynamic(FemtojoulesPerBit::new(65.0)),
                insertion_loss: Db::ZERO,
            },
            Switch => ComponentProps {
                energy: EnergyCost::Standing(Milliwatts::new(0.5)),
                insertion_loss: Db::new(1.0),
            },
            Laser => ComponentProps {
                energy: EnergyCost::Static(FemtojoulesPerBit::new(50.0)),
                insertion_loss: Db::ZERO,
            },
            Splitter => ComponentProps {
                energy: EnergyCost::Negligible,
                insertion_loss: Db::new(3.0),
            },
        }
    }

    /// Human-readable component name for reports.
    pub fn name(self) -> &'static str {
        use Component::*;
        match self {
            Modulator => "Modulator",
            ModulatorOffResonance => "Modulator (off-resonance)",
            Opxc => "OPxC coupler",
            WaveguidePerCm => "Waveguide (per cm, local)",
            DropFilterPass => "Drop filter (pass)",
            DropFilterDrop => "Drop filter (drop)",
            Multiplexer => "WDM multiplexer",
            Receiver => "Receiver",
            Switch => "Broadband switch",
            Laser => "Laser",
            Splitter => "Splitter",
        }
    }
}

/// Line rate of one wavelength channel: 20 Gb/s (2.5 GB/s).
pub const WAVELENGTH_GBPS: f64 = 20.0;

/// One wavelength channel in bytes per nanosecond (2.5 GB/s).
pub const WAVELENGTH_BYTES_PER_NS: f64 = 2.5;

/// Receiver sensitivity from Table 1 discussion: −21 dBm at 20 Gb/s.
pub const RECEIVER_SENSITIVITY_DBM: f64 = -21.0;

/// Optical power launched at the modulator by one laser: 0 dBm (1 mW).
pub const LAUNCH_POWER_DBM: f64 = 0.0;

/// Dynamic electrical energy of a complete transmit+receive pair, per bit.
///
/// Total over every [`EnergyCost`] shape: per-bit costs (dynamic or
/// amortized static) contribute their value, standing and negligible
/// costs contribute nothing — so the function stays correct if Table 1's
/// energy models are ever re-classified.
pub fn transceiver_dynamic_energy() -> FemtojoulesPerBit {
    let per_bit = |c: Component| match c.props().energy {
        EnergyCost::Dynamic(e) | EnergyCost::Static(e) => e,
        EnergyCost::Standing(_) | EnergyCost::Negligible => FemtojoulesPerBit::new(0.0),
    };
    per_bit(Component::Modulator) + per_bit(Component::Receiver)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(Component::Modulator.props().insertion_loss, Db::new(4.0));
        assert_eq!(Component::Opxc.props().insertion_loss, Db::new(1.2));
        assert_eq!(
            Component::DropFilterPass.props().insertion_loss,
            Db::new(0.1)
        );
        assert_eq!(
            Component::DropFilterDrop.props().insertion_loss,
            Db::new(1.5)
        );
        assert_eq!(Component::Switch.props().insertion_loss, Db::new(1.0));
        assert_eq!(
            Component::WaveguidePerCm.props().insertion_loss,
            Db::new(0.5)
        );
    }

    #[test]
    fn modulator_power_matches_paper() {
        // Paper: 0.7 mW modulator at 20 Gb/s = 35 fJ/bit.
        let energy = Component::Modulator.props().energy;
        assert!(
            matches!(energy, EnergyCost::Dynamic(_)),
            "modulator energy should be dynamic, got {energy:?}"
        );
        if let EnergyCost::Dynamic(e) = energy {
            assert!((e.power_at_gbps(WAVELENGTH_GBPS).value() - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn receiver_power_matches_paper() {
        // Paper: 1.3 mW receiver at 20 Gb/s = 65 fJ/bit.
        let energy = Component::Receiver.props().energy;
        assert!(
            matches!(energy, EnergyCost::Dynamic(_)),
            "receiver energy should be dynamic, got {energy:?}"
        );
        if let EnergyCost::Dynamic(e) = energy {
            assert!((e.power_at_gbps(WAVELENGTH_GBPS).value() - 1.3).abs() < 1e-12);
        }
    }

    #[test]
    fn transceiver_energy_is_100_fj_per_bit() {
        assert!((transceiver_dynamic_energy().value() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn all_components_have_names_and_props() {
        for c in Component::ALL {
            assert!(!c.name().is_empty());
            // Force evaluation: every variant must be covered by props().
            let _ = c.props();
        }
    }

    #[test]
    fn off_resonance_modulator_is_cheap_to_pass() {
        let on = Component::Modulator.props().insertion_loss;
        let off = Component::ModulatorOffResonance.props().insertion_loss;
        assert!(off.value() < on.value() / 10.0);
    }
}
