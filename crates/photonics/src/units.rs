//! Optical power and energy units.
//!
//! Newtypes keep logarithmic (dB/dBm) and linear (mW) quantities from
//! being mixed accidentally: losses ([`Db`]) subtract from levels
//! ([`Dbm`]), and levels convert to linear power ([`Milliwatts`]) only
//! through explicit conversions.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A relative optical power ratio in decibels; used for insertion loss and
/// link margins.
///
/// # Example
///
/// ```
/// use photonics::units::Db;
/// let total = Db::new(4.0) + Db::new(2.5);
/// assert_eq!(total.value(), 6.5);
/// assert!((Db::new(10.0).linear_factor() - 10.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(f64);

/// An absolute optical power level in dB-milliwatts.
///
/// # Example
///
/// ```
/// use photonics::units::{Db, Dbm, Milliwatts};
/// let launched = Dbm::new(0.0);             // 1 mW
/// let received = launched - Db::new(17.0);  // paper's un-switched link
/// assert!(received.value() > Dbm::new(-21.0).value()); // above sensitivity
/// assert!((Dbm::new(10.0).to_milliwatts().value() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(f64);

/// Linear optical or electrical power in milliwatts.
///
/// # Example
///
/// ```
/// use photonics::units::Milliwatts;
/// let p = Milliwatts::new(500.0) + Milliwatts::new(500.0);
/// assert_eq!(p.watts(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Milliwatts(f64);

/// Energy cost per transmitted bit, in femtojoules.
///
/// # Example
///
/// ```
/// use photonics::units::FemtojoulesPerBit;
/// let e = FemtojoulesPerBit::new(100.0);
/// // 100 fJ/bit at 20 Gb/s is 2 mW of dynamic power.
/// assert!((e.power_at_gbps(20.0).value() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct FemtojoulesPerBit(f64);

impl Db {
    /// Creates a loss/gain value in decibels.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn new(value: f64) -> Db {
        assert!(value.is_finite(), "dB value must be finite");
        Db(value)
    }

    /// The zero loss.
    pub const ZERO: Db = Db(0.0);

    /// The raw decibel value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The equivalent linear power ratio `10^(dB/10)`.
    pub fn linear_factor(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a decibel value from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive.
    pub fn from_linear_factor(ratio: f64) -> Db {
        assert!(ratio > 0.0, "power ratio must be positive");
        Db(10.0 * ratio.log10())
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl Sum for Db {
    fn sum<I: Iterator<Item = Db>>(iter: I) -> Db {
        iter.fold(Db::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl Dbm {
    /// Creates an absolute power level in dBm.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn new(value: f64) -> Dbm {
        assert!(value.is_finite(), "dBm value must be finite");
        Dbm(value)
    }

    /// The raw dBm value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts(10f64.powf(self.0 / 10.0))
    }

    /// Builds a dBm level from linear milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not strictly positive.
    pub fn from_milliwatts(mw: Milliwatts) -> Dbm {
        assert!(mw.0 > 0.0, "power must be positive to express in dBm");
        Dbm(10.0 * mw.0.log10())
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl Milliwatts {
    /// Creates a power value in milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn new(value: f64) -> Milliwatts {
        assert!(
            value.is_finite() && value >= 0.0,
            "power must be finite and non-negative"
        );
        Milliwatts(value)
    }

    /// The zero power.
    pub const ZERO: Milliwatts = Milliwatts(0.0);

    /// The raw milliwatt value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// This power expressed in watts.
    pub fn watts(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl Add for Milliwatts {
    type Output = Milliwatts;
    fn add(self, rhs: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 + rhs.0)
    }
}

impl AddAssign for Milliwatts {
    fn add_assign(&mut self, rhs: Milliwatts) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Milliwatts {
    type Output = Milliwatts;
    fn mul(self, rhs: f64) -> Milliwatts {
        Milliwatts(self.0 * rhs)
    }
}

impl Sum for Milliwatts {
    fn sum<I: Iterator<Item = Milliwatts>>(iter: I) -> Milliwatts {
        iter.fold(Milliwatts::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Milliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mW", self.0)
    }
}

impl FemtojoulesPerBit {
    /// Creates an energy-per-bit value in femtojoules.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn new(value: f64) -> FemtojoulesPerBit {
        assert!(
            value.is_finite() && value >= 0.0,
            "energy must be finite and non-negative"
        );
        FemtojoulesPerBit(value)
    }

    /// The zero energy.
    pub const ZERO: FemtojoulesPerBit = FemtojoulesPerBit(0.0);

    /// The raw fJ/bit value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Sustained power when toggling every bit at `gbps` gigabits/second.
    pub fn power_at_gbps(self, gbps: f64) -> Milliwatts {
        // fJ/bit * Gb/s = microwatts; divide by 1000 for milliwatts.
        Milliwatts::new(self.0 * gbps / 1_000.0)
    }

    /// Energy in joules to move `bytes` bytes.
    pub fn energy_for_bytes(self, bytes: u64) -> f64 {
        self.0 * 1e-15 * bytes as f64 * 8.0
    }
}

impl Add for FemtojoulesPerBit {
    type Output = FemtojoulesPerBit;
    fn add(self, rhs: FemtojoulesPerBit) -> FemtojoulesPerBit {
        FemtojoulesPerBit(self.0 + rhs.0)
    }
}

impl fmt::Display for FemtojoulesPerBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} fJ/bit", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trips_linear_factor() {
        for db in [0.0, 3.0, 10.0, 12.8, 17.0] {
            let back = Db::from_linear_factor(Db::new(db).linear_factor());
            assert!((back.value() - db).abs() < 1e-9);
        }
    }

    #[test]
    fn dbm_zero_is_one_milliwatt() {
        assert!((Dbm::new(0.0).to_milliwatts().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dbm_minus_db_is_attenuation() {
        let out = Dbm::new(0.0) - Db::new(3.0103);
        assert!((out.to_milliwatts().value() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn dbm_difference_is_db() {
        let margin = Dbm::new(-17.0) - Dbm::new(-21.0);
        assert!((margin.value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn paper_loss_factors_match_table5() {
        // Token ring: 12.8 dB of off-resonance ring loss => ~19x laser power.
        assert!((Db::new(12.8).linear_factor() - 19.05).abs() < 0.01);
        // Two-phase: 7 switch hops at 1 dB => ~5x.
        assert!((Db::new(7.0).linear_factor() - 5.01).abs() < 0.01);
        // Circuit-switched: ~15 dB of switch loss => ~30x.
        assert!((Db::new(15.0).linear_factor() - 31.6).abs() < 0.1);
    }

    #[test]
    fn energy_power_relation() {
        // Paper §2: receiver consumes 1.3 mW at 20 Gb/s = 65 fJ/bit.
        let rx = FemtojoulesPerBit::new(65.0);
        assert!((rx.power_at_gbps(20.0).value() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn energy_for_bytes_scales() {
        let e = FemtojoulesPerBit::new(100.0);
        // 1 byte = 8 bits * 100 fJ = 800 fJ.
        assert!((e.energy_for_bytes(1) - 800e-15).abs() < 1e-24);
    }

    #[test]
    fn milliwatts_to_watts() {
        assert_eq!(Milliwatts::new(8_192.0).watts(), 8.192);
    }

    #[test]
    #[should_panic(expected = "power must be finite and non-negative")]
    fn negative_power_rejected() {
        let _ = Milliwatts::new(-1.0);
    }

    #[test]
    fn sums_work() {
        let total: Db = [1.0, 2.0, 3.0].into_iter().map(Db::new).sum();
        assert!((total.value() - 6.0).abs() < 1e-12);
        let p: Milliwatts = [1.0, 2.0].into_iter().map(Milliwatts::new).sum();
        assert!((p.value() - 3.0).abs() < 1e-12);
    }
}
