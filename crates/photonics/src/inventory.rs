//! Per-network optical component counts — the paper's complexity analysis
//! (Table 6, §6.4).
//!
//! Counts are derived from closed-form formulas in the grid side `n`
//! (S = n² sites) and the WDM factor, and reproduce the paper's Table 6
//! exactly for the 8×8 scaled macrochip.

use crate::geometry::Layout;
use std::fmt;

/// The network architecture rows of Tables 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkId {
    /// Corona-style token-ring optical crossbar (§4.4).
    TokenRing,
    /// Static WDM-routed point-to-point network (§4.2).
    PointToPoint,
    /// Circuit-switched torus (§4.5).
    CircuitSwitched,
    /// Limited point-to-point with electronic routing (§4.6).
    LimitedPointToPoint,
    /// Two-phase arbitrated network, data portion (§4.3).
    TwoPhaseData,
    /// Two-phase ALT configuration (doubled switch trees), data portion.
    TwoPhaseDataAlt,
    /// Two-phase arbitration (control) network.
    TwoPhaseArbitration,
    /// Two-level hierarchical network (post-paper): per-cluster broadcast
    /// rings plus an inter-cluster bridge backbone.
    Hierarchical,
}

impl NetworkId {
    /// All rows: Table 5/6 order, then the post-paper hierarchical row.
    pub const ALL: [NetworkId; 8] = [
        NetworkId::TokenRing,
        NetworkId::PointToPoint,
        NetworkId::CircuitSwitched,
        NetworkId::LimitedPointToPoint,
        NetworkId::TwoPhaseData,
        NetworkId::TwoPhaseDataAlt,
        NetworkId::TwoPhaseArbitration,
        NetworkId::Hierarchical,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            NetworkId::TokenRing => "Token-Ring",
            NetworkId::PointToPoint => "Point-to-Point",
            NetworkId::CircuitSwitched => "Circuit-Switched",
            NetworkId::LimitedPointToPoint => "Limited Point-to-Point",
            NetworkId::TwoPhaseData => "Two-Phase: Data",
            NetworkId::TwoPhaseDataAlt => "Two-Phase: Data (ALT)",
            NetworkId::TwoPhaseArbitration => "Two-Phase: Arbitration",
            NetworkId::Hierarchical => "Hierarchical",
        }
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of switching element a network uses (Table 6 footnotes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// No switching elements at all.
    None,
    /// Broadband 1×2 optical switches (two-phase switch trees and feeds).
    Broadband1x2,
    /// 4×4 optical switches (circuit-switched torus).
    Optical4x4,
    /// 7×7 electronic routers (limited point-to-point).
    Electronic7x7,
}

/// Optical component totals for one network (one Table 6 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentCounts {
    /// Which network these counts describe.
    pub network: NetworkId,
    /// Total transmitters (modulators driven by distinct sources).
    pub transmitters: u64,
    /// Total receivers.
    pub receivers: u64,
    /// Physical waveguides.
    pub waveguides: u64,
    /// Area-equivalent waveguide count: physical waveguides scaled by how
    /// many rows each one crosses, relative to a normal row-local
    /// waveguide. Differs from `waveguides` only for the token ring, whose
    /// serpentine bundles traverse every row (the paper's "32 K" note).
    pub waveguide_area_equivalent: u64,
    /// Switching elements of kind `switch_kind`.
    pub switches: u64,
    /// What the `switches` column counts.
    pub switch_kind: SwitchKind,
}

impl ComponentCounts {
    /// Computes the Table 6 row for `network` on a given layout with the
    /// scaled macrochip's WDM factor of 8 wavelengths per waveguide.
    ///
    /// # Example
    ///
    /// ```
    /// use photonics::geometry::Layout;
    /// use photonics::inventory::{ComponentCounts, NetworkId};
    ///
    /// let c = ComponentCounts::for_network(NetworkId::PointToPoint, &Layout::macrochip());
    /// assert_eq!(c.transmitters, 8_192);
    /// assert_eq!(c.waveguides, 3_072);
    /// ```
    pub fn for_network(network: NetworkId, layout: &Layout) -> ComponentCounts {
        // Scaled configuration: 2 wavelengths per destination, 8 per
        // waveguide (128 Tx/site at 8x8).
        ComponentCounts::for_network_in(network, layout, 2, 8)
    }

    /// Computes a Table 6 row for an arbitrary provisioning: `lambdas_per
    /// destination` point-to-point wavelengths and `wdm` wavelengths per
    /// waveguide. The paper's full 2015 system (§3) is `(16, 16)`; the
    /// simulated scaled system is `(2, 8)`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or `wdm` does not divide the
    /// per-site transmitter count.
    pub fn for_network_in(
        network: NetworkId,
        layout: &Layout,
        lambdas_per_dest: u64,
        wdm: u64,
    ) -> ComponentCounts {
        assert!(
            lambdas_per_dest > 0 && wdm > 0,
            "provisioning must be positive"
        );
        let n = layout.side() as u64;
        let s = layout.sites() as u64; // S = n^2
        let tx_per_site = lambdas_per_dest * s;
        assert!(
            tx_per_site.is_multiple_of(wdm),
            "WDM factor must divide the per-site transmitter count"
        );
        let wgs_sourced = tx_per_site / wdm; // waveguides sourced per site

        match network {
            // Corona adaptation (§4.4): every site has modulators on every
            // destination's full 128-wavelength bundle; the WDM factor is
            // reduced to 2, quadrupling waveguides; bundles are serpentine
            // loops, so each occupies out + return tracks (x2 physical) and
            // crosses all n rows (x n/2 in area vs. a 2-row loop).
            NetworkId::TokenRing => {
                let wdm_ring = 2;
                let physical = 2 * s * tx_per_site / wdm_ring;
                ComponentCounts {
                    network,
                    transmitters: s * s * tx_per_site,
                    receivers: s * tx_per_site,
                    waveguides: physical,
                    waveguide_area_equivalent: physical * n / 2,
                    switches: 0,
                    switch_kind: SwitchKind::None,
                }
            }
            // §4.2: each site sources 16 horizontal waveguides; each
            // vertical channel needs an up and a down waveguide.
            NetworkId::PointToPoint => ComponentCounts {
                network,
                transmitters: s * tx_per_site,
                receivers: s * tx_per_site,
                waveguides: 3 * s * wgs_sourced,
                waveguide_area_equivalent: 3 * s * wgs_sourced,
                switches: 0,
                switch_kind: SwitchKind::None,
            },
            // §4.5: 16 waveguides sourced per site, routed as loops between
            // rows (x2), with one 4x4 switch per sourced waveguide per site.
            NetworkId::CircuitSwitched => ComponentCounts {
                network,
                transmitters: s * tx_per_site,
                receivers: s * tx_per_site,
                waveguides: 2 * s * wgs_sourced,
                waveguide_area_equivalent: 2 * s * wgs_sourced,
                switches: s * wgs_sourced,
                switch_kind: SwitchKind::Optical4x4,
            },
            // §4.6: same waveguide plan as point-to-point, plus two 7x7
            // electronic routers per site.
            NetworkId::LimitedPointToPoint => ComponentCounts {
                network,
                transmitters: s * tx_per_site,
                receivers: s * tx_per_site,
                waveguides: 3 * s * wgs_sourced,
                waveguide_area_equivalent: 3 * s * wgs_sourced,
                switches: 2 * s,
                switch_kind: SwitchKind::Electronic7x7,
            },
            // §4.3: n*S shared channels; each is two waveguides, each split
            // into two low-loss segments, horizontal + vertical; every
            // channel passes n feed switches on each of its 4 segments.
            NetworkId::TwoPhaseData => {
                let channels = n * s;
                ComponentCounts {
                    network,
                    transmitters: s * tx_per_site,
                    receivers: s * tx_per_site,
                    waveguides: channels * 8,
                    waveguide_area_equivalent: channels * 8,
                    switches: channels * n * 4,
                    switch_kind: SwitchKind::Broadband1x2,
                }
            }
            // ALT doubles the transmitters; the restructured (doubled)
            // switch trees need one fewer 1x2 stage per sourced waveguide,
            // matching the paper's 15 K total.
            NetworkId::TwoPhaseDataAlt => {
                let channels = n * s;
                ComponentCounts {
                    network,
                    transmitters: 2 * s * tx_per_site,
                    receivers: s * tx_per_site,
                    waveguides: channels * 8,
                    waveguide_area_equivalent: channels * 8,
                    switches: channels * n * 4 - s * wgs_sourced,
                    switch_kind: SwitchKind::Broadband1x2,
                }
            }
            // §4.3 arbitration: one request wavelength and one notification
            // wavelength per site; every site snoops its row's and its
            // column's arbitration waveguides (2n receivers per site);
            // 2n horizontal request + n vertical notification waveguides.
            NetworkId::TwoPhaseArbitration => ComponentCounts {
                network,
                transmitters: 2 * s,
                receivers: 2 * n * s,
                waveguides: 2 * n + n,
                waveguide_area_equivalent: 2 * n + n,
                switches: 0,
                switch_kind: SwitchKind::None,
            },
            // Post-paper hierarchical design: each cluster (c×c sub-grid)
            // shares one serpentine broadcast bundle sized for the cluster
            // (`lambdas_per_dest` wavelengths per in-cluster destination);
            // every site modulates and snoops its own cluster's bundle
            // only, so optical provisioning scales with the cluster size,
            // not the full site count. One electronic bridge per cluster
            // sources a `wdm`-wavelength point-to-point link to every
            // other bridge. Component totals grow with S + k² rather than
            // S², which is the design's whole point.
            NetworkId::Hierarchical => {
                let c = layout.cluster_side() as u64;
                let k = (layout.side() as u64 / c) * (layout.side() as u64 / c);
                let lambdas_per_cluster = lambdas_per_dest * c * c;
                let bridge_links = k * (k - 1);
                // Serpentine loop: out + return tracks per cluster.
                let ring_physical = k * 2 * lambdas_per_cluster.div_ceil(wdm);
                ComponentCounts {
                    network,
                    transmitters: s * lambdas_per_cluster + bridge_links * wdm,
                    receivers: s * lambdas_per_cluster + bridge_links * wdm,
                    waveguides: ring_physical + bridge_links,
                    waveguide_area_equivalent: ring_physical * c.div_ceil(2) + bridge_links,
                    switches: k,
                    switch_kind: SwitchKind::Electronic7x7,
                }
            }
        }
    }

    /// All Table 6 rows for a layout.
    pub fn table6(layout: &Layout) -> Vec<ComponentCounts> {
        NetworkId::ALL
            .iter()
            .map(|&n| ComponentCounts::for_network(n, layout))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(n: NetworkId) -> ComponentCounts {
        ComponentCounts::for_network(n, &Layout::macrochip())
    }

    #[test]
    fn table6_token_ring() {
        let c = counts(NetworkId::TokenRing);
        assert_eq!(c.transmitters, 524_288); // 512 K
        assert_eq!(c.receivers, 8_192);
        assert_eq!(c.waveguides, 8_192); // paper: "physical ... only 8192"
        assert_eq!(c.waveguide_area_equivalent, 32_768); // paper: "32 K"
        assert_eq!(c.switches, 0);
    }

    #[test]
    fn table6_point_to_point() {
        let c = counts(NetworkId::PointToPoint);
        assert_eq!(
            (c.transmitters, c.receivers, c.waveguides, c.switches),
            (8_192, 8_192, 3_072, 0)
        );
    }

    #[test]
    fn table6_circuit_switched() {
        let c = counts(NetworkId::CircuitSwitched);
        assert_eq!(
            (c.transmitters, c.receivers, c.waveguides, c.switches),
            (8_192, 8_192, 2_048, 1_024)
        );
        assert_eq!(c.switch_kind, SwitchKind::Optical4x4);
    }

    #[test]
    fn table6_limited_point_to_point() {
        let c = counts(NetworkId::LimitedPointToPoint);
        assert_eq!(
            (c.transmitters, c.receivers, c.waveguides, c.switches),
            (8_192, 8_192, 3_072, 128)
        );
        assert_eq!(c.switch_kind, SwitchKind::Electronic7x7);
    }

    #[test]
    fn table6_two_phase_data() {
        let c = counts(NetworkId::TwoPhaseData);
        assert_eq!(
            (c.transmitters, c.receivers, c.waveguides, c.switches),
            (8_192, 8_192, 4_096, 16_384)
        );
    }

    #[test]
    fn table6_two_phase_alt() {
        let c = counts(NetworkId::TwoPhaseDataAlt);
        assert_eq!(
            (c.transmitters, c.receivers, c.waveguides, c.switches),
            (16_384, 8_192, 4_096, 15_360)
        );
    }

    #[test]
    fn table6_two_phase_arbitration() {
        let c = counts(NetworkId::TwoPhaseArbitration);
        assert_eq!(
            (c.transmitters, c.receivers, c.waveguides, c.switches),
            (128, 1_024, 24, 0)
        );
    }

    #[test]
    fn p2p_has_lowest_complexity_of_switched_networks() {
        // The paper's §6.4 claim: the point-to-point network needs no
        // switches and no more transmitters/receivers than any other
        // full-bandwidth network.
        let p2p = counts(NetworkId::PointToPoint);
        for id in [
            NetworkId::TokenRing,
            NetworkId::CircuitSwitched,
            NetworkId::TwoPhaseData,
        ] {
            let other = counts(id);
            assert!(p2p.transmitters <= other.transmitters);
            assert!(p2p.switches <= other.switches);
        }
    }

    #[test]
    fn table6_covers_all_networks() {
        let rows = ComponentCounts::table6(&Layout::macrochip());
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn hierarchical_counts_at_8x8() {
        // c = 4 → 4 clusters of 16 sites; 32 λ shared per cluster ring;
        // 12 ordered bridge links of 8 λ each; 4 electronic bridges.
        let c = counts(NetworkId::Hierarchical);
        assert_eq!(
            (c.transmitters, c.receivers, c.waveguides, c.switches),
            (2_144, 2_144, 44, 4)
        );
        assert_eq!(c.waveguide_area_equivalent, 76);
        assert_eq!(c.switch_kind, SwitchKind::Electronic7x7);
    }

    #[test]
    fn hierarchical_complexity_grows_sub_quadratically() {
        // Doubling the side quadruples sites; flat networks grow their
        // transmitter counts ~16x (S × tx_per_site ∝ S²), the hierarchical
        // design ~4-5x (S × cluster λ + k² bridges).
        let at8 = counts(NetworkId::Hierarchical);
        let at16 =
            ComponentCounts::for_network(NetworkId::Hierarchical, &Layout::new(16, 2.5, 0.1));
        assert!(at16.transmitters < 8 * at8.transmitters);
        let p2p16 =
            ComponentCounts::for_network(NetworkId::PointToPoint, &Layout::new(16, 2.5, 0.1));
        assert!(at16.transmitters * 10 < p2p16.transmitters);
    }

    #[test]
    fn counts_scale_with_grid() {
        let small =
            ComponentCounts::for_network(NetworkId::PointToPoint, &Layout::new(4, 2.5, 0.1));
        // 16 sites, 32 tx/site.
        assert_eq!(small.transmitters, 512);
    }

    #[test]
    fn full_2015_provisioning_matches_section3() {
        // §3: 1024 transmitters and 1024 receivers per site, waveguides
        // carrying 16 wavelengths.
        let c =
            ComponentCounts::for_network_in(NetworkId::PointToPoint, &Layout::macrochip(), 16, 16);
        assert_eq!(c.transmitters, 64 * 1024);
        assert_eq!(c.receivers, 64 * 1024);
        // 64 waveguides sourced per site, tripled for vertical up/down.
        assert_eq!(c.waveguides, 3 * 64 * 64);
        assert_eq!(c.switches, 0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_wdm_rejected() {
        let _ =
            ComponentCounts::for_network_in(NetworkId::PointToPoint, &Layout::macrochip(), 2, 7);
    }
}
