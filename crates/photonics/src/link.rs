//! End-to-end optical link-loss budgets (paper §2).
//!
//! A link budget is an ordered chain of components between the laser and
//! the receiver. The paper's canonical un-switched site-to-site link loses
//! 17 dB, leaving a 4 dB margin over the −21 dBm receiver sensitivity when
//! the laser launches 0 dBm at the modulator.

use crate::components::{Component, RECEIVER_SENSITIVITY_DBM};
use crate::units::{Db, Dbm};
use std::fmt;

/// One entry of a link budget: a component class and how many of them the
/// signal traverses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetEntry {
    /// The traversed component class.
    pub component: Component,
    /// How many instances the optical signal passes through.
    pub count: u32,
    /// Loss override (e.g. worst-case end-to-end waveguide loss instead of
    /// a per-cm figure). `None` uses the component's Table 1 loss.
    pub loss_override: Option<Db>,
}

impl BudgetEntry {
    fn loss(&self) -> Db {
        let unit = self
            .loss_override
            .unwrap_or(self.component.props().insertion_loss);
        unit * self.count as f64
    }
}

/// An end-to-end optical path loss budget.
///
/// # Example
///
/// ```
/// use photonics::link::LinkBudget;
/// use photonics::units::Dbm;
///
/// let link = LinkBudget::unswitched_site_to_site();
/// assert!((link.total_loss().value() - 17.0).abs() < 0.2);
/// assert!(link.closes(Dbm::new(0.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkBudget {
    name: &'static str,
    entries: Vec<BudgetEntry>,
}

impl LinkBudget {
    /// Creates an empty budget with a report name.
    pub fn new(name: &'static str) -> LinkBudget {
        LinkBudget {
            name,
            entries: Vec::new(),
        }
    }

    /// Adds `count` traversals of `component` using its Table 1 loss.
    pub fn with(mut self, component: Component, count: u32) -> LinkBudget {
        self.entries.push(BudgetEntry {
            component,
            count,
            loss_override: None,
        });
        self
    }

    /// Adds a traversal with an explicit per-instance loss.
    pub fn with_loss(mut self, component: Component, count: u32, loss: Db) -> LinkBudget {
        self.entries.push(BudgetEntry {
            component,
            count,
            loss_override: Some(loss),
        });
        self
    }

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The budget's entries, in traversal order.
    pub fn entries(&self) -> &[BudgetEntry] {
        &self.entries
    }

    /// Sum of all insertion losses along the path.
    pub fn total_loss(&self) -> Db {
        self.entries.iter().map(BudgetEntry::loss).sum()
    }

    /// Power margin over the receiver sensitivity when launching at
    /// `launch` dBm.
    pub fn margin(&self, launch: Dbm) -> Db {
        (launch - self.total_loss()) - Dbm::new(RECEIVER_SENSITIVITY_DBM)
    }

    /// True when the received power meets the receiver sensitivity.
    pub fn closes(&self, launch: Dbm) -> bool {
        self.margin(launch).value() >= 0.0
    }

    /// Extra laser power factor this link needs relative to a link that
    /// exactly fits the baseline budget (the paper's "power loss factor",
    /// Table 5): `10^(excess_dB / 10)`, floored at 1×.
    pub fn power_factor_over(&self, baseline: &LinkBudget) -> f64 {
        let excess = self.total_loss() - baseline.total_loss();
        excess.linear_factor().max(1.0)
    }

    /// The paper's canonical un-switched site-to-site link (§2): modulator,
    /// WDM mux, OPxC down to the routing substrate, worst-case global
    /// waveguide traversal (6 dB, including the inter-layer coupler),
    /// OPxC back up, six pass-by drop filters in the destination column,
    /// and the final drop. Totals 17 dB as in the paper.
    pub fn unswitched_site_to_site() -> LinkBudget {
        LinkBudget::new("un-switched site-to-site")
            .with(Component::Modulator, 1)
            .with(Component::Multiplexer, 1)
            .with(Component::Opxc, 2)
            .with_loss(Component::WaveguidePerCm, 1, Db::new(6.0))
            .with(Component::DropFilterPass, 6)
            .with(Component::DropFilterDrop, 1)
    }

    /// The two-phase network's worst data path: the un-switched link plus
    /// seven broadband switch hops (§4.3).
    pub fn two_phase_worst() -> LinkBudget {
        Self::unswitched_site_to_site()
            .with(Component::Switch, 7)
            .rename("two-phase worst path")
    }

    /// The circuit-switched torus's worst path: un-switched link plus 31
    /// optical switch hops at the adapted 0.5 dB per 4×4 switch (§4.5).
    pub fn circuit_switched_worst() -> LinkBudget {
        Self::unswitched_site_to_site()
            .with_loss(Component::Switch, 31, Db::new(0.5))
            .rename("circuit-switched worst path")
    }

    /// The token-ring crossbar's path at the adapted WDM factor of 2: the
    /// un-switched link plus 128 off-resonance modulator ring pass-bys
    /// (12.8 dB, §4.4).
    pub fn token_ring_path() -> LinkBudget {
        Self::unswitched_site_to_site()
            .with(Component::ModulatorOffResonance, 128)
            .rename("token-ring data path")
    }

    /// A board-level inter-chip link between two macrochip gateways
    /// (multi-chip fabrics). Distinct from the on-chip Table 1 path:
    /// the signal leaves the chip through a lossier board-attach
    /// coupler ([`BOARD_COUPLER_DB`] vs the on-chip OPxC's 1.2 dB),
    /// runs `pitch_cm` of silicon-nitride board waveguide at
    /// [`BOARD_WAVEGUIDE_DB_PER_CM`] (vs 6 dB worst-case *total* for
    /// on-chip global routing), couples back up, and is dropped at the
    /// far gateway. No pass-by filters: board links are dedicated
    /// gateway-to-gateway, not a shared column.
    pub fn inter_chip_board(pitch_cm: f64) -> LinkBudget {
        LinkBudget::new("inter-chip board link")
            .with(Component::Modulator, 1)
            .with(Component::Multiplexer, 1)
            .with_loss(Component::Opxc, 2, Db::new(BOARD_COUPLER_DB))
            .with_loss(
                Component::WaveguidePerCm,
                1,
                Db::new(BOARD_WAVEGUIDE_DB_PER_CM * pitch_cm),
            )
            .with(Component::DropFilterDrop, 1)
    }

    fn rename(mut self, name: &'static str) -> LinkBudget {
        self.name = name;
        self
    }
}

/// Chip-to-board coupling loss for one board-attach interface, in dB.
/// Higher than the on-chip OPxC (1.2 dB): the interposer-level coupler
/// bridges a larger gap and tolerance stack.
pub const BOARD_COUPLER_DB: f64 = 2.0;

/// Board-level silicon-nitride waveguide propagation loss, in dB/cm.
/// Between the on-chip global figure (0.1 dB/cm) and the local one
/// (0.5 dB/cm): board waveguides are long but planar and low-confinement.
pub const BOARD_WAVEGUIDE_DB_PER_CM: f64 = 0.3;

impl fmt::Display for LinkBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for e in &self.entries {
            writeln!(
                f,
                "  {:>3} x {:<28} {}",
                e.count,
                e.component.name(),
                e.loss()
            )?;
        }
        write!(f, "  total: {}", self.total_loss())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unswitched_link_is_17db() {
        let link = LinkBudget::unswitched_site_to_site();
        assert!(
            (link.total_loss().value() - 17.0).abs() < 0.2,
            "got {}",
            link.total_loss()
        );
    }

    #[test]
    fn unswitched_link_has_4db_margin() {
        let link = LinkBudget::unswitched_site_to_site();
        let margin = link.margin(Dbm::new(0.0));
        assert!((margin.value() - 4.0).abs() < 0.2, "margin {margin}");
        assert!(link.closes(Dbm::new(0.0)));
    }

    #[test]
    fn token_ring_adds_12_8_db() {
        let base = LinkBudget::unswitched_site_to_site();
        let ring = LinkBudget::token_ring_path();
        let extra = ring.total_loss() - base.total_loss();
        assert!((extra.value() - 12.8).abs() < 1e-9);
        // 12.8 dB => ~19x laser power, the paper's Table 5 factor.
        assert!((ring.power_factor_over(&base) - 19.05).abs() < 0.05);
    }

    #[test]
    fn token_ring_path_does_not_close_at_base_power() {
        // This is exactly why the token ring needs 19x laser power.
        assert!(!LinkBudget::token_ring_path().closes(Dbm::new(0.0)));
    }

    #[test]
    fn two_phase_worst_factor_is_about_5x() {
        let base = LinkBudget::unswitched_site_to_site();
        let f = LinkBudget::two_phase_worst().power_factor_over(&base);
        assert!((f - 5.01).abs() < 0.05, "factor {f}");
    }

    #[test]
    fn circuit_switched_factor_is_about_30x() {
        let base = LinkBudget::unswitched_site_to_site();
        let f = LinkBudget::circuit_switched_worst().power_factor_over(&base);
        assert!((15.5 - Db::from_linear_factor(f).value()).abs() < 1e-9 || f > 28.0);
        assert!(f > 28.0 && f < 36.0, "factor {f}");
    }

    #[test]
    fn power_factor_is_floored_at_one() {
        let base = LinkBudget::two_phase_worst();
        let smaller = LinkBudget::unswitched_site_to_site();
        assert_eq!(smaller.power_factor_over(&base), 1.0);
    }

    #[test]
    fn display_lists_every_entry() {
        let s = LinkBudget::unswitched_site_to_site().to_string();
        assert!(s.contains("Modulator"));
        assert!(s.contains("total"));
    }

    #[test]
    fn board_link_at_default_pitch_closes_with_extra_laser_power() {
        // 25 cm pitch (8-site chip + 5 cm gap): 4 + 2.5 + 2×2 + 7.5 +
        // 1.5 = 19.5 dB — closes at 0 dBm, but needs ~1.8× the laser
        // power of the canonical on-chip link.
        let board = LinkBudget::inter_chip_board(25.0);
        assert!((board.total_loss().value() - 19.5).abs() < 1e-9);
        assert!(board.closes(Dbm::new(0.0)));
        let base = LinkBudget::unswitched_site_to_site();
        let f = board.power_factor_over(&base);
        assert!((f - 1.778).abs() < 0.01, "factor {f}");
    }

    #[test]
    fn board_link_loss_grows_with_pitch() {
        let near = LinkBudget::inter_chip_board(25.0).total_loss();
        let far = LinkBudget::inter_chip_board(50.0).total_loss();
        assert!((far.value() - near.value() - 7.5).abs() < 1e-9);
    }
}
