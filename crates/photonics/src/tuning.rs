//! Ring-resonator thermal tuning (§2).
//!
//! Every ring (modulators, multiplexers, drop filters) must be held on
//! its wavelength against fabrication tolerances and ambient temperature
//! variation; the paper targets 0.1 mW of tuning power per wavelength.
//! This model makes the target's sensitivity explicit: silicon ring
//! resonances shift ~10 GHz/K, heaters retune ~100 GHz/mW, so the
//! paper's 0.1 mW/ring corresponds to holding a ring against ~1 K of
//! average thermal offset. Across a 20 cm macrochip with kilowatts of
//! compute, that is an aggressive assumption — this module quantifies
//! what happens when it slips.

use crate::geometry::Layout;
use crate::inventory::{ComponentCounts, NetworkId};
use crate::units::Milliwatts;

/// Thermo-optic tuning characteristics of a silicon ring resonator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningModel {
    /// Resonance drift per kelvin of local temperature offset.
    pub ghz_per_kelvin: f64,
    /// Heater efficiency: resonance shift per milliwatt of heater power.
    pub ghz_per_mw: f64,
}

impl TuningModel {
    /// Representative 2015-era silicon ring values; calibrated so the
    /// paper's 0.1 mW/ring target corresponds to a 1 K average offset.
    pub fn silicon() -> TuningModel {
        TuningModel {
            ghz_per_kelvin: 10.0,
            ghz_per_mw: 100.0,
        }
    }

    /// Creates a custom model.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive.
    pub fn new(ghz_per_kelvin: f64, ghz_per_mw: f64) -> TuningModel {
        assert!(
            ghz_per_kelvin > 0.0 && ghz_per_mw > 0.0,
            "tuning parameters must be positive"
        );
        TuningModel {
            ghz_per_kelvin,
            ghz_per_mw,
        }
    }

    /// Heater power to hold one ring against a `delta_kelvin` offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset is negative or not finite.
    pub fn per_ring(&self, delta_kelvin: f64) -> Milliwatts {
        assert!(
            delta_kelvin.is_finite() && delta_kelvin >= 0.0,
            "temperature offset must be non-negative"
        );
        Milliwatts::new(delta_kelvin * self.ghz_per_kelvin / self.ghz_per_mw)
    }

    /// Rings a network must hold on-wavelength: every receiver-side drop
    /// filter plus every modulator ring.
    pub fn rings(network: NetworkId, layout: &Layout) -> u64 {
        let c = ComponentCounts::for_network(network, layout);
        c.receivers + c.transmitters
    }

    /// Total tuning power of `network` when its rings sit, on average,
    /// `avg_delta_kelvin` from their resonance temperature.
    pub fn network_tuning(
        &self,
        network: NetworkId,
        layout: &Layout,
        avg_delta_kelvin: f64,
    ) -> Milliwatts {
        self.per_ring(avg_delta_kelvin) * Self::rings(network, layout) as f64
    }

    /// The thermal offset at which a network's tuning power equals its
    /// laser power — the point where the paper's "negligible tuning"
    /// assumption inverts.
    pub fn break_even_kelvin(&self, network: NetworkId, layout: &Layout) -> f64 {
        let laser = crate::power::NetworkPower::for_network(network, layout)
            .laser
            .value();
        let per_kelvin = self.per_ring(1.0).value() * Self::rings(network, layout) as f64;
        laser / per_kelvin
    }
}

impl Default for TuningModel {
    fn default() -> Self {
        TuningModel::silicon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kelvin_matches_the_papers_target() {
        // §2: 0.1 mW per wavelength tuning power.
        let m = TuningModel::silicon();
        assert!((m.per_ring(1.0).value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn tuning_scales_linearly_with_offset() {
        let m = TuningModel::silicon();
        assert!((m.per_ring(5.0).value() - 0.5).abs() < 1e-12);
        assert_eq!(m.per_ring(0.0).value(), 0.0);
    }

    #[test]
    fn p2p_network_tuning_at_one_kelvin() {
        // 8192 Rx + 8192 Tx rings at 0.1 mW = 1.64 W.
        let m = TuningModel::silicon();
        let w = m.network_tuning(NetworkId::PointToPoint, &Layout::macrochip(), 1.0);
        assert!((w.watts() - 1.6384).abs() < 1e-6);
    }

    #[test]
    fn token_ring_pays_for_its_half_million_modulators() {
        let layout = Layout::macrochip();
        let m = TuningModel::silicon();
        let token = m.network_tuning(NetworkId::TokenRing, &layout, 1.0);
        let p2p = m.network_tuning(NetworkId::PointToPoint, &layout, 1.0);
        // 532 480 rings vs 16 384: the crossbar's hidden thermal cost.
        assert!(token.value() / p2p.value() > 30.0);
    }

    #[test]
    fn break_even_offsets() {
        let layout = Layout::macrochip();
        let m = TuningModel::silicon();
        // P2P: 8.2 W laser vs 1.64 W/K of tuning -> ~5 K.
        let p2p = m.break_even_kelvin(NetworkId::PointToPoint, &layout);
        assert!((p2p - 5.0).abs() < 0.1, "p2p break-even {p2p}");
        // The token ring's laser is huge but its ring count is huger:
        // tuning overtakes the laser below 3 K.
        let token = m.break_even_kelvin(NetworkId::TokenRing, &layout);
        assert!(token < 3.0, "token break-even {token}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_offset_rejected() {
        TuningModel::silicon().per_ring(-1.0);
    }
}
