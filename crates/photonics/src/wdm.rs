//! The static WDM routing plan of the point-to-point network (§4.2),
//! made concrete.
//!
//! The paper's point-to-point network needs no arbitration because
//! wavelength assignment *is* the routing: a source picks the horizontal
//! waveguide that couples into the destination's column and the
//! wavelength that the destination's row drops. This module constructs
//! the full (source → waveguide, wavelength) assignment and proves the
//! property the architecture rests on: **no two transmissions ever share
//! a (waveguide, wavelength) pair**, so the network is contention-free by
//! construction.

use crate::geometry::Layout;

/// One end-to-end wavelength route of the static plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WdmRoute {
    /// Source site index (row-major).
    pub src: usize,
    /// Destination site index (row-major).
    pub dst: usize,
    /// Which of the source's horizontal waveguides carries the signal.
    /// Horizontal waveguides are private to the source, so the global id
    /// is `(src, horizontal_waveguide)`.
    pub horizontal_waveguide: usize,
    /// Which *shared* vertical waveguide the signal couples into: one per
    /// (destination column, source) pair at the scaled provisioning —
    /// globally identified by `(dst_column, vertical_track)`.
    pub vertical_track: usize,
    /// The wavelength index within the waveguide (0..wdm).
    pub wavelength: usize,
}

/// The complete static assignment for an n×n macrochip.
///
/// # Example
///
/// ```
/// use photonics::geometry::Layout;
/// use photonics::wdm::WdmPlan;
///
/// let plan = WdmPlan::point_to_point(&Layout::macrochip(), 2, 8);
/// assert_eq!(plan.routes().len(), 64 * 63 * 2); // 2 wavelengths per pair
/// plan.verify(); // contention-freedom by construction
/// ```
#[derive(Debug, Clone)]
pub struct WdmPlan {
    side: usize,
    lambdas_per_dest: usize,
    wdm: usize,
    routes: Vec<WdmRoute>,
}

impl WdmPlan {
    /// Builds the §4.2 plan: `lambdas_per_dest` wavelengths per ordered
    /// site pair, `wdm` wavelengths per waveguide.
    ///
    /// # Panics
    ///
    /// Panics unless `wdm` divides the per-destination-column wavelength
    /// count (`side × lambdas_per_dest`).
    pub fn point_to_point(layout: &Layout, lambdas_per_dest: usize, wdm: usize) -> WdmPlan {
        let side = layout.side();
        let sites = layout.sites();
        let per_col = side * lambdas_per_dest; // wavelengths a source aims at one column
        assert!(
            per_col.is_multiple_of(wdm),
            "WDM factor must divide the per-column wavelength count"
        );
        let wgs_per_col = per_col / wdm; // horizontal waveguides per destination column

        let mut routes = Vec::with_capacity(sites * (sites - 1) * lambdas_per_dest);
        for src in 0..sites {
            for dst in 0..sites {
                if src == dst {
                    continue;
                }
                let dst_col = dst % side;
                let dst_row = dst / side;
                for k in 0..lambdas_per_dest {
                    // Within the destination column's bundle, the
                    // destination row selects the dropped wavelength; `k`
                    // spreads the pair's wavelengths across waveguides.
                    let slot = dst_row * lambdas_per_dest + k;
                    let horizontal = dst_col * wgs_per_col + slot / wdm;
                    let wavelength = slot % wdm;
                    routes.push(WdmRoute {
                        src,
                        dst,
                        horizontal_waveguide: horizontal,
                        // Each source owns a private track up each
                        // destination column (the vertical waveguides are
                        // provisioned per source, §4.2's 2x vertical
                        // count covers both directions).
                        vertical_track: src,
                        wavelength,
                    });
                }
            }
        }
        WdmPlan {
            side,
            lambdas_per_dest,
            wdm,
            routes,
        }
    }

    /// All routes of the plan.
    pub fn routes(&self) -> &[WdmRoute] {
        &self.routes
    }

    /// Horizontal waveguides each source must drive.
    pub fn horizontal_waveguides_per_site(&self) -> usize {
        self.side * self.side * self.lambdas_per_dest / self.wdm
    }

    /// Verifies the plan's contention-freedom invariants.
    ///
    /// # Panics
    ///
    /// Panics if any (source, horizontal waveguide, wavelength) or
    /// (destination column, vertical track, wavelength) is assigned to
    /// two different destinations/sources, or if any site drops the same
    /// wavelength for two different sources on one waveguide — i.e. if
    /// the "static routing" would need arbitration after all.
    pub fn verify(&self) {
        use std::collections::HashMap;
        // A source may not reuse (horizontal waveguide, lambda).
        let mut h: HashMap<(usize, usize, usize), usize> = HashMap::new();
        // A (dst column, vertical track, lambda, destination row) triple
        // identifies the receiver-side drop; it may have one source only.
        let mut v: HashMap<(usize, usize, usize, usize), usize> = HashMap::new();
        for r in &self.routes {
            let prev = h.insert((r.src, r.horizontal_waveguide, r.wavelength), r.dst);
            assert!(
                prev.is_none() || prev == Some(r.dst),
                "source {} drives waveguide {} lambda {} toward two destinations",
                r.src,
                r.horizontal_waveguide,
                r.wavelength
            );
            let dst_col = r.dst % self.side;
            let dst_row = r.dst / self.side;
            let prev = v.insert((dst_col, r.vertical_track, r.wavelength, dst_row), r.src);
            assert!(
                prev.is_none() || prev == Some(r.src),
                "two sources collide on column {} track {} lambda {}",
                dst_col,
                r.vertical_track,
                r.wavelength
            );
        }
    }

    /// The routes from one source, sorted by destination.
    pub fn routes_from(&self, src: usize) -> Vec<WdmRoute> {
        let mut v: Vec<WdmRoute> = self
            .routes
            .iter()
            .copied()
            .filter(|r| r.src == src)
            .collect();
        v.sort_by_key(|r| r.dst);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> WdmPlan {
        WdmPlan::point_to_point(&Layout::macrochip(), 2, 8)
    }

    #[test]
    fn scaled_plan_matches_section_4_2() {
        let p = plan();
        // "each site sources 16 horizontal waveguides, each carrying 8
        // wavelengths of light, for a total of 128 wavelengths".
        assert_eq!(p.horizontal_waveguides_per_site(), 16);
        assert_eq!(p.routes_from(0).len(), 63 * 2);
    }

    #[test]
    fn plan_is_contention_free() {
        plan().verify();
    }

    #[test]
    fn every_pair_gets_its_wavelengths() {
        let p = plan();
        for src in 0..64 {
            let routes = p.routes_from(src);
            let dsts: std::collections::HashSet<usize> = routes.iter().map(|r| r.dst).collect();
            assert_eq!(dsts.len(), 63, "source {src} misses destinations");
        }
    }

    #[test]
    fn wavelength_identifies_destination_row_within_a_waveguide() {
        // The receiver-side drop filter selects by wavelength: two
        // destinations sharing a waveguide from the same source must use
        // different wavelengths.
        let p = plan();
        for src in [0usize, 17, 63] {
            let mut seen = std::collections::HashMap::new();
            for r in p.routes_from(src) {
                if let Some(prev) = seen.insert((r.horizontal_waveguide, r.wavelength), r.dst) {
                    assert_eq!(prev, r.dst);
                }
            }
        }
    }

    #[test]
    fn full_scale_plan_also_verifies() {
        let p = WdmPlan::point_to_point(&Layout::macrochip(), 16, 16);
        assert_eq!(p.horizontal_waveguides_per_site(), 64);
        p.verify();
    }

    #[test]
    fn small_grid_plan_verifies() {
        let p = WdmPlan::point_to_point(&Layout::new(4, 2.5, 0.1), 2, 8);
        p.verify();
        assert_eq!(p.routes().len(), 16 * 15 * 2);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_wdm_rejected() {
        let _ = WdmPlan::point_to_point(&Layout::macrochip(), 2, 7);
    }
}
