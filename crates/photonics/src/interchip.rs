//! Board-level inter-chip photonics: inventory and power for a
//! multi-macrochip fabric's gateway-to-gateway links.
//!
//! An `M×M` board of macrochips carries one dedicated directed WDM link
//! from every chip's gateway to every other gateway — `k·(k−1)` links
//! for `k = M²` chips, the hierarchical bridge backbone extended one
//! level up. Each link runs the [`LinkBudget::inter_chip_board`] path,
//! whose loss grows with the board Manhattan distance between its two
//! gateways, so longer diagonals pay a larger laser power factor than
//! adjacent neighbors — the board-level analogue of the paper's Table 5
//! "power loss factor" column.
//!
//! This module intentionally models *only* the board level: on-chip
//! provisioning stays the per-chip [`ComponentCounts`] /
//! [`NetworkPower`](crate::power::NetworkPower) tables multiplied by the
//! chip count.

use crate::components::{transceiver_dynamic_energy, Component, EnergyCost};
use crate::link::LinkBudget;
use crate::units::Milliwatts;
use std::fmt;

/// The board-level parameters of a multi-chip fabric, as this crate
/// needs them (the simulator's `FabricConfig` lives a layer above and
/// flattens itself into this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterChipSpec {
    /// Chips per board side (`M`).
    pub chips_per_side: usize,
    /// Wavelengths multiplexed on each directed link.
    pub lambdas_per_link: usize,
    /// Center-to-center chip spacing, in cm.
    pub chip_pitch_cm: f64,
}

impl InterChipSpec {
    /// Total chips on the board.
    pub fn chips(&self) -> usize {
        self.chips_per_side * self.chips_per_side
    }

    /// Directed gateway-to-gateway links (`k·(k−1)`).
    pub fn directed_links(&self) -> usize {
        let k = self.chips();
        k * (k - 1)
    }

    /// Board Manhattan distance between two chips, in chip pitches.
    fn chip_hops(&self, a: usize, b: usize) -> usize {
        let m = self.chips_per_side;
        (a % m).abs_diff(b % m) + (a / m).abs_diff(b / m)
    }

    /// Iterates every directed link's waveguide length in cm.
    fn link_lengths_cm(&self) -> impl Iterator<Item = f64> + '_ {
        let k = self.chips();
        (0..k).flat_map(move |a| {
            (0..k)
                .filter(move |&b| b != a)
                .map(move |b| self.chip_hops(a, b) as f64 * self.chip_pitch_cm)
        })
    }

    /// Component inventory of the board level.
    pub fn inventory(&self) -> InterChipInventory {
        let links = self.directed_links();
        let lambdas = self.lambdas_per_link;
        InterChipInventory {
            directed_links: links,
            lasers: links * lambdas,
            modulators: links * lambdas,
            receivers: links * lambdas,
            board_couplers: links * 2,
            waveguide_cm: self.link_lengths_cm().sum(),
        }
    }

    /// Laser, ring-tuning and per-byte dynamic power of the board level.
    ///
    /// Laser power is per-link: each directed link's budget (at its own
    /// waveguide length) is compared against the canonical on-chip
    /// 17 dB path, and its wavelengths' 1 mW lasers are scaled by the
    /// resulting excess-loss factor — the same accounting the on-chip
    /// Table 5 applies per network.
    pub fn power(&self) -> InterChipPower {
        let baseline = LinkBudget::unswitched_site_to_site();
        let lambdas = self.lambdas_per_link as f64;
        let mut laser = Milliwatts::new(0.0);
        let mut worst_factor: f64 = 1.0;
        for length in self.link_lengths_cm() {
            let factor = LinkBudget::inter_chip_board(length).power_factor_over(&baseline);
            worst_factor = worst_factor.max(factor);
            laser += Milliwatts::new(1.0) * (lambdas * factor);
        }
        // Ring heaters: the modulator and drop rings of every wavelength
        // at both ends of each link hold a standing tuning bias.
        let ring_mw = match Component::DropFilterDrop.props().energy {
            EnergyCost::Standing(mw) => mw,
            _ => Milliwatts::new(0.0),
        };
        let tuning = ring_mw * (self.directed_links() as f64 * lambdas * 2.0);
        InterChipPower {
            laser,
            tuning,
            worst_link_factor: worst_factor,
            dynamic_fj_per_byte: transceiver_dynamic_energy().value() * 8.0,
        }
    }
}

/// Board-level component counts (the fabric's addition to Table 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterChipInventory {
    /// Directed gateway-to-gateway links.
    pub directed_links: usize,
    /// Board-link CW lasers (one per wavelength per link).
    pub lasers: usize,
    /// Gateway modulators driving board links.
    pub modulators: usize,
    /// Gateway receivers terminating board links.
    pub receivers: usize,
    /// Chip-to-board attach couplers (two per link).
    pub board_couplers: usize,
    /// Total board waveguide length across all links, in cm.
    pub waveguide_cm: f64,
}

impl fmt::Display for InterChipInventory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} board links: {} lasers, {} modulators, {} receivers, \
             {} board couplers, {:.0} cm waveguide",
            self.directed_links,
            self.lasers,
            self.modulators,
            self.receivers,
            self.board_couplers,
            self.waveguide_cm
        )
    }
}

/// Board-level power terms (the fabric's addition to Table 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterChipPower {
    /// Total board-link laser power, loss factors applied per link.
    pub laser: Milliwatts,
    /// Standing ring-tuning power of the board transceiver rings.
    pub tuning: Milliwatts,
    /// The longest link's laser power factor over the canonical on-chip
    /// path.
    pub worst_link_factor: f64,
    /// Dynamic transceiver energy per byte crossing one board link, in
    /// femtojoules (one full O-E-O modulator+receiver pair).
    pub dynamic_fj_per_byte: f64,
}

impl InterChipPower {
    /// Laser plus tuning, the standing board-level power.
    pub fn static_total(&self) -> Milliwatts {
        self.laser + self.tuning
    }
}

impl fmt::Display for InterChipPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "laser {} + tuning {} = {} static (worst link factor {:.2}x, \
             {:.0} fJ/B dynamic)",
            self.laser,
            self.tuning,
            self.static_total(),
            self.worst_link_factor,
            self.dynamic_fj_per_byte
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> InterChipSpec {
        InterChipSpec {
            chips_per_side: 2,
            lambdas_per_link: 8,
            chip_pitch_cm: 25.0,
        }
    }

    #[test]
    fn two_by_two_inventory() {
        let inv = two_by_two().inventory();
        assert_eq!(inv.directed_links, 12);
        assert_eq!(inv.lasers, 96);
        assert_eq!(inv.modulators, 96);
        assert_eq!(inv.receivers, 96);
        assert_eq!(inv.board_couplers, 24);
        // 8 adjacent directed pairs at 25 cm + 4 diagonal at 50 cm.
        assert!((inv.waveguide_cm - 400.0).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_link_length() {
        let p = two_by_two().power();
        // Worst link is the 50 cm diagonal: 27 dB total, 10 dB over the
        // 17 dB baseline = 10x laser factor.
        assert!((p.worst_link_factor - 10.0).abs() < 0.1, "{p}");
        // 8 near links at ~1.78x + 4 far at ~10x, 8 mW of lasers each.
        let expected = 8.0 * (8.0 * 1.778) + 4.0 * (8.0 * 10.0);
        assert!(
            (p.laser.value() - expected).abs() < 2.0,
            "laser {} vs {expected}",
            p.laser
        );
        // 12 links × 8 λ × 2 rings × 0.1 mW.
        assert!((p.tuning.value() - 19.2).abs() < 1e-9);
        assert!(p.static_total().value() > p.laser.value());
    }

    #[test]
    fn dynamic_energy_is_one_transceiver_pair() {
        // 100 fJ/bit × 8 = 800 fJ/B per board crossing.
        let p = two_by_two().power();
        assert!((p.dynamic_fj_per_byte - 800.0).abs() < 1e-9);
    }

    #[test]
    fn single_chip_board_has_no_links() {
        let spec = InterChipSpec {
            chips_per_side: 1,
            lambdas_per_link: 8,
            chip_pitch_cm: 25.0,
        };
        assert_eq!(spec.directed_links(), 0);
        assert_eq!(spec.inventory().lasers, 0);
        assert_eq!(spec.power().static_total().value(), 0.0);
    }
}
