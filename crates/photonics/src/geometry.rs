//! Physical layout of the macrochip and optical time-of-flight (§3).
//!
//! The macrochip is an n×n array of sites on an SOI routing substrate.
//! Light propagates in silicon waveguides at about 0.3c — the paper's
//! 0.1 ns/cm figure. Site pitch is chosen so that the adapted Corona token
//! ring's round trip is 80 core cycles (16 ns at 5 GHz), as in §4.4.

use desim::Span;

/// Grid coordinates of a site: `x` is the column, `y` is the row.
pub type Coord = (usize, usize);

/// Physical geometry of the macrochip's routing substrate.
///
/// # Example
///
/// ```
/// use photonics::geometry::Layout;
///
/// let layout = Layout::macrochip();
/// // Corona adaptation: a full token round trip takes 16 ns (80 cycles).
/// assert_eq!(layout.ring_round_trip().as_ns_f64(), 16.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Layout {
    side: usize,
    site_pitch_cm: f64,
    prop_ns_per_cm: f64,
}

impl Layout {
    /// The paper's 8×8 macrochip: 2.5 cm site pitch, 0.1 ns/cm global
    /// waveguides.
    pub fn macrochip() -> Layout {
        Layout::new(8, 2.5, 0.1)
    }

    /// Creates a custom layout.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero or the physical parameters are not
    /// strictly positive and finite.
    pub fn new(side: usize, site_pitch_cm: f64, prop_ns_per_cm: f64) -> Layout {
        assert!(side > 0, "grid side must be positive");
        assert!(
            site_pitch_cm > 0.0 && site_pitch_cm.is_finite(),
            "invalid site pitch"
        );
        assert!(
            prop_ns_per_cm > 0.0 && prop_ns_per_cm.is_finite(),
            "invalid propagation speed"
        );
        Layout {
            side,
            site_pitch_cm,
            prop_ns_per_cm,
        }
    }

    /// Sites per grid side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Total number of sites.
    pub fn sites(&self) -> usize {
        self.side * self.side
    }

    /// Center-to-center spacing of adjacent sites, in centimeters.
    pub fn site_pitch_cm(&self) -> f64 {
        self.site_pitch_cm
    }

    /// Waveguide length of the row-then-column path between two sites, in
    /// centimeters. This is the route the point-to-point and two-phase
    /// networks use: along the source row to the destination column, then
    /// down the column.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is outside the grid.
    pub fn manhattan_cm(&self, src: Coord, dst: Coord) -> f64 {
        self.check(src);
        self.check(dst);
        let dx = src.0.abs_diff(dst.0) as f64;
        let dy = src.1.abs_diff(dst.1) as f64;
        (dx + dy) * self.site_pitch_cm
    }

    /// Time of flight along the row-then-column waveguide path.
    pub fn prop_delay(&self, src: Coord, dst: Coord) -> Span {
        Span::from_ns_f64(self.manhattan_cm(src, dst) * self.prop_ns_per_cm)
    }

    /// Worst-case time of flight between any two sites.
    pub fn worst_prop_delay(&self) -> Span {
        self.prop_delay((0, 0), (self.side - 1, self.side - 1))
    }

    /// Number of torus hops between two sites under wrap-around XY routing.
    pub fn torus_hops(&self, src: Coord, dst: Coord) -> usize {
        self.check(src);
        self.check(dst);
        let wrap = |a: usize, b: usize| {
            let d = a.abs_diff(b);
            d.min(self.side - d)
        };
        wrap(src.0, dst.0) + wrap(src.1, dst.1)
    }

    /// Time of flight of a single torus hop (one site pitch).
    pub fn hop_delay(&self) -> Span {
        Span::from_ns_f64(self.site_pitch_cm * self.prop_ns_per_cm)
    }

    /// Side length of the square sub-grids ("clusters") the hierarchical
    /// network partitions the macrochip into: the largest of 4, 3, 2 that
    /// divides the grid side, or 1 when none does. Every paper-relevant
    /// side (8, 16, 24, 32) yields 4×4 clusters.
    pub fn cluster_side(&self) -> usize {
        [4usize, 3, 2]
            .into_iter()
            .find(|c| self.side.is_multiple_of(*c))
            .unwrap_or(1)
    }

    /// Number of clusters (`(side / cluster_side)²`).
    ///
    /// # Panics
    ///
    /// Panics if [`cluster_side`](Self::cluster_side) does not tile the
    /// grid exactly — integer division here would silently orphan the
    /// edge sites. Unreachable for `cluster_side`'s own values (each
    /// candidate is checked for divisibility, and 1 always divides), but
    /// kept as a guard against future tiling policies.
    pub fn clusters(&self) -> usize {
        let cluster_side = self.cluster_side();
        assert!(
            self.side.is_multiple_of(cluster_side),
            "cluster side {cluster_side} does not tile a {}-site grid side",
            self.side
        );
        let per_side = self.side / cluster_side;
        per_side * per_side
    }

    /// Position of site `i` in the serpentine (boustrophedon) ring that the
    /// token-ring network's waveguides follow: row 0 left-to-right, row 1
    /// right-to-left, and so on.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid ring index.
    pub fn ring_coord(&self, i: usize) -> Coord {
        assert!(i < self.sites(), "ring index {i} out of range");
        let y = i / self.side;
        let x_in_row = i % self.side;
        let x = if y.is_multiple_of(2) {
            x_in_row
        } else {
            self.side - 1 - x_in_row
        };
        (x, y)
    }

    /// Inverse of [`ring_coord`](Self::ring_coord).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn ring_index(&self, c: Coord) -> usize {
        self.check(c);
        let x_in_row = if c.1.is_multiple_of(2) {
            c.0
        } else {
            self.side - 1 - c.0
        };
        c.1 * self.side + x_in_row
    }

    /// Token travel time from one ring position to the next.
    pub fn ring_hop(&self) -> Span {
        self.hop_delay()
    }

    /// Token round-trip time around all sites (80 cycles / 16 ns for the
    /// paper's 8×8 macrochip).
    pub fn ring_round_trip(&self) -> Span {
        self.ring_hop() * self.sites() as u64
    }

    /// Ring hops from position `from` to position `to`, moving forward.
    /// A zero-hop request means "it is already here".
    pub fn ring_distance(&self, from: usize, to: usize) -> usize {
        let n = self.sites();
        assert!(from < n && to < n, "ring position out of range");
        // `to + n - from < 2n`: wrap-subtract in place of the modulo (the
        // site count is a runtime value, so the compiler cannot strength-
        // reduce the division itself).
        let d = to + n - from;
        if d >= n {
            d - n
        } else {
            d
        }
    }

    /// Propagation delay along the serpentine ring between two sites
    /// (data launched at `src` travels forward around the ring to `dst`).
    pub fn ring_prop_delay(&self, src: Coord, dst: Coord) -> Span {
        let hops = self.ring_distance(self.ring_index(src), self.ring_index(dst));
        self.ring_hop() * hops as u64
    }

    fn check(&self, c: Coord) {
        assert!(
            c.0 < self.side && c.1 < self.side,
            "coordinate {c:?} outside {0}x{0} grid",
            self.side
        );
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::macrochip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macrochip_dimensions() {
        let l = Layout::macrochip();
        assert_eq!(l.side(), 8);
        assert_eq!(l.sites(), 64);
    }

    #[test]
    fn corner_to_corner_propagation() {
        let l = Layout::macrochip();
        // 7 + 7 hops of 2.5 cm at 0.1 ns/cm = 3.5 ns.
        assert_eq!(l.worst_prop_delay(), Span::from_ns_f64(3.5));
    }

    #[test]
    fn zero_distance_zero_delay() {
        let l = Layout::macrochip();
        assert_eq!(l.prop_delay((3, 3), (3, 3)), Span::ZERO);
    }

    #[test]
    fn token_round_trip_is_80_cycles() {
        let l = Layout::macrochip();
        // 80 cycles at 5 GHz = 16 ns (paper §4.4).
        assert_eq!(l.ring_round_trip(), Span::from_ns(16));
        assert_eq!(l.ring_hop(), Span::from_ps(250));
    }

    #[test]
    fn ring_order_is_serpentine() {
        let l = Layout::macrochip();
        assert_eq!(l.ring_coord(0), (0, 0));
        assert_eq!(l.ring_coord(7), (7, 0));
        assert_eq!(l.ring_coord(8), (7, 1)); // second row reverses
        assert_eq!(l.ring_coord(15), (0, 1));
        assert_eq!(l.ring_coord(16), (0, 2));
    }

    #[test]
    fn ring_index_inverts_ring_coord() {
        let l = Layout::macrochip();
        for i in 0..l.sites() {
            assert_eq!(l.ring_index(l.ring_coord(i)), i);
        }
    }

    #[test]
    fn ring_distance_wraps() {
        let l = Layout::macrochip();
        assert_eq!(l.ring_distance(0, 1), 1);
        assert_eq!(l.ring_distance(63, 0), 1);
        assert_eq!(l.ring_distance(5, 5), 0);
    }

    #[test]
    fn torus_hops_wrap_around() {
        let l = Layout::macrochip();
        assert_eq!(l.torus_hops((0, 0), (7, 0)), 1); // wraps, not 7
        assert_eq!(l.torus_hops((0, 0), (4, 4)), 8);
        assert_eq!(l.torus_hops((2, 2), (2, 2)), 0);
    }

    #[test]
    fn adjacent_sites_one_pitch_apart() {
        let l = Layout::macrochip();
        assert_eq!(l.manhattan_cm((0, 0), (1, 0)), 2.5);
        assert_eq!(l.prop_delay((0, 0), (0, 1)), Span::from_ps(250));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_coordinates_panic() {
        let l = Layout::macrochip();
        let _ = l.prop_delay((0, 0), (8, 0));
    }

    #[test]
    fn custom_layout_scales() {
        let l = Layout::new(4, 5.0, 0.1);
        assert_eq!(l.sites(), 16);
        assert_eq!(l.worst_prop_delay(), Span::from_ns(3));
    }

    #[test]
    fn cluster_side_prefers_4x4() {
        for (side, cluster, clusters) in [
            (8usize, 4usize, 4usize),
            (16, 4, 16),
            (24, 4, 36),
            (32, 4, 64),
            (6, 3, 4),
            (10, 2, 25),
            (11, 1, 121),
        ] {
            let l = Layout::new(side, 2.5, 0.1);
            assert_eq!(l.cluster_side(), cluster, "side {side}");
            assert_eq!(l.clusters(), clusters, "side {side}");
        }
    }

    #[test]
    fn cluster_tiling_is_exact_for_every_side() {
        // Regression for the divisibility audit: for every supported grid
        // side the chosen cluster side must tile the grid exactly — no
        // truncating division, no orphaned edge sites. Covers the sides
        // the issue called out (6, 10) and every prime in range (which
        // fall back to 1×1 clusters).
        for side in 2usize..=33 {
            let l = Layout::new(side, 2.5, 0.1);
            let c = l.cluster_side();
            assert_eq!(side % c, 0, "side {side}: cluster side {c} must divide");
            let per_side = side / c;
            assert_eq!(l.clusters(), per_side * per_side, "side {side}");
            // Every site maps into a cluster index < clusters(): the
            // row-major cluster arithmetic the hierarchical network uses.
            let clusters = l.clusters();
            for y in 0..side {
                for x in 0..side {
                    let idx = (y / c) * per_side + (x / c);
                    assert!(idx < clusters, "site ({x},{y}) orphaned at side {side}");
                }
            }
            // And cluster coverage is exhaustive: counting sites per
            // cluster accounts for the whole grid with equal-size tiles.
            let mut counts = vec![0usize; clusters];
            for y in 0..side {
                for x in 0..side {
                    counts[(y / c) * per_side + (x / c)] += 1;
                }
            }
            assert!(
                counts.iter().all(|&n| n == c * c),
                "side {side}: ragged cluster sizes {counts:?}"
            );
        }
    }
}
