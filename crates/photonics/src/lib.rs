//! Silicon-photonic device, loss, power and complexity models for the
//! macrochip (ISCA 2010, §2, §3, §6.3, §6.4).
//!
//! This crate encodes the paper's technology projection:
//!
//! * [`components`] — the optical component property table (paper Table 1):
//!   energies and insertion losses for modulators, couplers, waveguides,
//!   drop filters, receivers, switches, and lasers;
//! * [`units`] — decibel / optical-power / energy newtypes with checked
//!   conversions;
//! * [`link`] — end-to-end link-loss budgets and margin checks (the paper's
//!   17 dB un-switched link with 4 dB margin);
//! * [`geometry`] — the physical 8×8 site layout, waveguide path lengths
//!   and time-of-flight (0.1 ns/cm);
//! * [`power`] — per-network laser/tuning/dynamic power (paper Table 5);
//! * [`inventory`] — per-network component counts (paper Table 6).
//!
//! # Example
//!
//! ```
//! use photonics::link::LinkBudget;
//! use photonics::units::Dbm;
//!
//! let link = LinkBudget::unswitched_site_to_site();
//! let margin = link.margin(Dbm::new(0.0));
//! assert!(margin.value() >= 3.9, "paper projects a 4 dB margin");
//! ```

pub mod components;
pub mod crosstalk;
pub mod geometry;
pub mod interchip;
pub mod inventory;
pub mod link;
pub mod power;
pub mod tuning;
pub mod units;
pub mod wdm;

pub use components::{Component, ComponentProps};
pub use geometry::Layout;
pub use interchip::{InterChipInventory, InterChipPower, InterChipSpec};
pub use inventory::{ComponentCounts, NetworkId};
pub use link::LinkBudget;
pub use power::NetworkPower;
pub use units::{Db, Dbm, FemtojoulesPerBit, Milliwatts};
