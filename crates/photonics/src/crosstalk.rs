//! Waveguide-crossing loss and crosstalk (§4.5).
//!
//! The circuit-switched torus needs many waveguide crossings, and the
//! paper *assumes the crosstalk is negligible* because the original
//! design's assumptions were unknown ("we assume negligible crosstalk at
//! waveguide crossings for the macrochip adaptation of this network").
//! This module removes the assumption: with the measured
//! silicon-on-insulator crossing figures from the paper's own reference
//! (Bogaerts et al., Opt. Lett. 32(19), 2007 — ~0.16 dB insertion loss
//! and ~−40 dB crosstalk per crossing for the optimized design), it
//! computes the extra loss and the coherent-crosstalk power penalty of a
//! path with `k` crossings, and what that does to the torus's laser
//! budget.

use crate::units::Db;

/// Optical properties of one waveguide crossing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossingModel {
    /// Insertion loss per crossing.
    pub loss_per_crossing: Db,
    /// Power coupled into the crossing waveguide (negative dB).
    pub crosstalk_per_crossing: Db,
}

impl CrossingModel {
    /// The optimized double-etched crossing of Bogaerts et al. (the
    /// paper's reference \[7\]).
    pub fn bogaerts_optimized() -> CrossingModel {
        CrossingModel {
            loss_per_crossing: Db::new(0.16),
            crosstalk_per_crossing: Db::new(-40.0),
        }
    }

    /// A plain unoptimized crossing from the same reference: much worse.
    pub fn bogaerts_plain() -> CrossingModel {
        CrossingModel {
            loss_per_crossing: Db::new(1.4),
            crosstalk_per_crossing: Db::new(-9.0),
        }
    }

    /// Creates a custom model.
    ///
    /// # Panics
    ///
    /// Panics if the loss is negative or the crosstalk is not below 0 dB.
    pub fn new(loss_per_crossing: Db, crosstalk_per_crossing: Db) -> CrossingModel {
        assert!(
            loss_per_crossing.value() >= 0.0,
            "crossing loss cannot be negative"
        );
        assert!(
            crosstalk_per_crossing.value() < 0.0,
            "crosstalk must be below 0 dB"
        );
        CrossingModel {
            loss_per_crossing,
            crosstalk_per_crossing,
        }
    }

    /// Total insertion loss of `crossings` crossings.
    pub fn path_loss(&self, crossings: u32) -> Db {
        self.loss_per_crossing * crossings as f64
    }

    /// Aggregate interferer power relative to the signal after
    /// `crossings` crossings, assuming incoherent accumulation (each
    /// crossing contributes an independent interferer).
    pub fn aggregate_crosstalk(&self, crossings: u32) -> Db {
        if crossings == 0 {
            return Db::new(-300.0); // effectively no interferer
        }
        let single = self.crosstalk_per_crossing.linear_factor();
        Db::from_linear_factor(single * crossings as f64)
    }

    /// The power penalty needed to keep the eye open against the
    /// aggregate crosstalk: `-10·log10(1 − 2·sqrt(x))` for coherent
    /// worst-case beating of an interferer at relative power `x`
    /// (standard optical-crosstalk penalty form).
    ///
    /// Returns `None` when the crosstalk is so strong the eye closes
    /// completely (penalty unbounded).
    pub fn power_penalty(&self, crossings: u32) -> Option<Db> {
        let x = self.aggregate_crosstalk(crossings).linear_factor();
        let arg = 1.0 - 2.0 * x.sqrt();
        if arg <= 0.0 {
            None
        } else {
            Some(Db::new(-10.0 * arg.log10()))
        }
    }

    /// Full path penalty: insertion loss plus crosstalk power penalty.
    pub fn total_penalty(&self, crossings: u32) -> Option<Db> {
        Some(self.path_loss(crossings) + self.power_penalty(crossings)?)
    }
}

/// Worst-case crossings a circuit endures on the adapted torus: each of
/// the `hops` traversed rows/columns crosses the orthogonal plane's
/// waveguide bundles — `waveguides_per_gap` parallel waveguides between
/// each row (§4.5: 64 loops per row gap at the scaled configuration).
pub fn torus_worst_case_crossings(hops: u32, waveguides_per_gap: u32) -> u32 {
    hops * waveguides_per_gap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn losses_accumulate_linearly() {
        let m = CrossingModel::bogaerts_optimized();
        assert!((m.path_loss(10).value() - 1.6).abs() < 1e-12);
        assert_eq!(m.path_loss(0).value(), 0.0);
    }

    #[test]
    fn crosstalk_accumulates_incoherently() {
        let m = CrossingModel::bogaerts_optimized();
        // 10 crossings at -40 dB each => -30 dB aggregate.
        assert!((m.aggregate_crosstalk(10).value() + 30.0).abs() < 1e-9);
    }

    #[test]
    fn optimized_crossings_cost_little_at_small_counts() {
        let m = CrossingModel::bogaerts_optimized();
        let p = m.power_penalty(8).expect("eye open");
        assert!(p.value() < 0.6, "penalty {p}");
    }

    #[test]
    fn plain_crossings_close_the_eye_quickly() {
        // The unoptimized crossing (-9 dB crosstalk) cannot survive even
        // a handful of crossings — why the paper's reference [7] matters.
        let m = CrossingModel::bogaerts_plain();
        assert!(m.power_penalty(2).is_none());
    }

    #[test]
    fn torus_paths_accumulate_hundreds_of_crossings() {
        // 8 hops through gaps holding 64 waveguides each.
        let crossings = torus_worst_case_crossings(8, 64);
        assert_eq!(crossings, 512);
        let m = CrossingModel::bogaerts_optimized();
        // 512 optimized crossings: 82 dB of loss — the paper's
        // "negligible crosstalk" assumption is doing heavy lifting; a
        // practical layout must avoid most crossings with the two-layer
        // substrate.
        assert!(m.path_loss(crossings).value() > 80.0);
    }

    #[test]
    fn few_crossings_total_penalty_is_finite_and_ordered() {
        let m = CrossingModel::bogaerts_optimized();
        let p4 = m.total_penalty(4).expect("open");
        let p16 = m.total_penalty(16).expect("open");
        assert!(p4.value() < p16.value());
    }

    #[test]
    #[should_panic(expected = "below 0 dB")]
    fn positive_crosstalk_rejected() {
        let _ = CrossingModel::new(Db::new(0.1), Db::new(1.0));
    }
}
