//! Per-network optical power models — the paper's Table 5 (§6.3).
//!
//! Static optical power is the laser power needed to overcome each
//! network's worst-case loss: `lasers × 1 mW × loss factor`. Loss factors
//! come from the extra dB each architecture adds over the canonical
//! un-switched link (off-resonance ring pass-bys, switch hops, splitters,
//! snooping fan-out). Dynamic power is the modulator + receiver energy per
//! bit actually moved, plus (for the limited point-to-point network)
//! electronic router energy.

use crate::components::transceiver_dynamic_energy;
use crate::geometry::Layout;
use crate::inventory::{ComponentCounts, NetworkId};
use crate::link::LinkBudget;
use crate::units::{Db, FemtojoulesPerBit, Milliwatts};

/// Base laser power per wavelength assumed by the paper: 1 mW.
pub const BASE_LASER_MW: f64 = 1.0;

/// Conservative electronic router switching energy (paper §6.3, from the
/// Firefly analysis): 60 pJ per byte routed.
pub const ROUTER_PJ_PER_BYTE: f64 = 60.0;

/// Ring-resonator tuning power per wavelength filter: 0.1 mW (§2).
pub const TUNING_MW_PER_RING: f64 = 0.1;

/// One row of the paper's Table 5: the optical power of a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkPower {
    /// Which network this row describes.
    pub network: NetworkId,
    /// The paper's "power loss factor" — extra laser power multiplier.
    pub loss_factor: f64,
    /// Number of laser wavelength sources feeding the network.
    pub laser_sources: u64,
    /// Total laser (static optical) power.
    pub laser: Milliwatts,
}

impl NetworkPower {
    /// Computes the Table 5 row for `network` on `layout`.
    ///
    /// # Example
    ///
    /// ```
    /// use photonics::geometry::Layout;
    /// use photonics::inventory::NetworkId;
    /// use photonics::power::NetworkPower;
    ///
    /// let p2p = NetworkPower::for_network(NetworkId::PointToPoint, &Layout::macrochip());
    /// assert!((p2p.laser.watts() - 8.192).abs() < 1e-9);
    /// ```
    pub fn for_network(network: NetworkId, layout: &Layout) -> NetworkPower {
        let counts = ComponentCounts::for_network(network, layout);
        let loss_factor = Self::loss_factor(network);
        // Each sourced wavelength needs one 1 mW laser feed. The token
        // ring's 512 K modulators share the 8192 lit wavelengths of the
        // destination bundles, so lasers track receivers there; everywhere
        // else one transmitter is one lit wavelength (ALT doubles them).
        let laser_sources = match network {
            NetworkId::TokenRing => counts.receivers,
            _ => counts.transmitters,
        };
        let laser = Milliwatts::new(laser_sources as f64 * BASE_LASER_MW * loss_factor);
        NetworkPower {
            network,
            loss_factor,
            laser_sources,
            laser,
        }
    }

    /// The paper's Table 5 power-loss factor for each network, derived
    /// from the extra decibels its worst path adds over the un-switched
    /// link (see [`LinkBudget`]).
    pub fn loss_factor(network: NetworkId) -> f64 {
        match network {
            // 128 off-resonance ring pass-bys at 0.1 dB = 12.8 dB ≈ 19x.
            NetworkId::TokenRing => 19.0,
            NetworkId::PointToPoint => 1.0,
            // ~15 dB of 4x4 switch hops; the paper rounds to 30x.
            NetworkId::CircuitSwitched => 30.0,
            NetworkId::LimitedPointToPoint => 1.0,
            // 7 broadband switch hops at 1 dB ≈ 5x.
            NetworkId::TwoPhaseData => 5.0,
            // ALT halves the switch chain (6 dB ≈ 4x) but doubles sources.
            NetworkId::TwoPhaseDataAlt => 4.0,
            // Snooped by the 7 other sites of the domain: 7-8x input power.
            NetworkId::TwoPhaseArbitration => 8.0,
            // Cluster broadcast: 16 off-resonance pass-bys at 0.1 dB plus
            // the snooping fan-out within a 4×4 cluster ≈ 10 dB ≈ 10x; the
            // electronic bridge links add no optical loss.
            NetworkId::Hierarchical => 10.0,
        }
    }

    /// Checks a stated loss factor against the dB-derived value from the
    /// link budgets, returning the relative error. Only the architectures
    /// with a link-budget model are checked; others return zero.
    pub fn loss_factor_error(network: NetworkId) -> f64 {
        let base = LinkBudget::unswitched_site_to_site();
        let derived = match network {
            NetworkId::TokenRing => LinkBudget::token_ring_path().power_factor_over(&base),
            NetworkId::TwoPhaseData => LinkBudget::two_phase_worst().power_factor_over(&base),
            NetworkId::CircuitSwitched => {
                LinkBudget::circuit_switched_worst().power_factor_over(&base)
            }
            NetworkId::TwoPhaseDataAlt => Db::new(6.0).linear_factor(),
            _ => return 0.0,
        };
        (Self::loss_factor(network) - derived).abs() / derived
    }

    /// All Table 5 rows.
    pub fn table5(layout: &Layout) -> Vec<NetworkPower> {
        NetworkId::ALL
            .iter()
            .map(|&n| NetworkPower::for_network(n, layout))
            .collect()
    }

    /// Standing ring-tuning power: 0.1 mW per receiver-side filter ring.
    pub fn tuning(&self, layout: &Layout) -> Milliwatts {
        let counts = ComponentCounts::for_network(self.network, layout);
        Milliwatts::new(counts.receivers as f64 * TUNING_MW_PER_RING)
    }

    /// Total static power (laser + tuning).
    pub fn static_total(&self, layout: &Layout) -> Milliwatts {
        self.laser + self.tuning(layout)
    }
}

/// Dynamic transceiver energy per byte moved optically (modulator +
/// receiver; 100 fJ/bit = 800 fJ/byte).
pub fn dynamic_joules_per_byte() -> f64 {
    transceiver_dynamic_energy().energy_for_bytes(1)
}

/// Electronic router energy per byte for the limited point-to-point
/// network, in joules.
pub fn router_joules_per_byte() -> f64 {
    ROUTER_PJ_PER_BYTE * 1e-12
}

/// Dynamic transceiver energy as a typed quantity.
pub fn dynamic_energy_per_bit() -> FemtojoulesPerBit {
    transceiver_dynamic_energy()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: NetworkId) -> NetworkPower {
        NetworkPower::for_network(n, &Layout::macrochip())
    }

    #[test]
    fn table5_laser_powers_match_paper() {
        // Paper Table 5: Token-Ring 155 W, P2P 8 W, Circuit 245 W,
        // Limited 8 W, Two-Phase data 41 W, ALT 65.5 W, Arb 1 W.
        assert!((row(NetworkId::TokenRing).laser.watts() - 155.0).abs() < 1.0);
        assert!((row(NetworkId::PointToPoint).laser.watts() - 8.0).abs() < 0.5);
        assert!((row(NetworkId::CircuitSwitched).laser.watts() - 245.0).abs() < 1.0);
        assert!((row(NetworkId::LimitedPointToPoint).laser.watts() - 8.0).abs() < 0.5);
        assert!((row(NetworkId::TwoPhaseData).laser.watts() - 41.0).abs() < 0.5);
        assert!((row(NetworkId::TwoPhaseDataAlt).laser.watts() - 65.5).abs() < 0.5);
        assert!((row(NetworkId::TwoPhaseArbitration).laser.watts() - 1.0).abs() < 0.1);
    }

    #[test]
    fn table5_loss_factors_match_paper() {
        assert_eq!(row(NetworkId::TokenRing).loss_factor, 19.0);
        assert_eq!(row(NetworkId::PointToPoint).loss_factor, 1.0);
        assert_eq!(row(NetworkId::CircuitSwitched).loss_factor, 30.0);
        assert_eq!(row(NetworkId::TwoPhaseData).loss_factor, 5.0);
        assert_eq!(row(NetworkId::TwoPhaseDataAlt).loss_factor, 4.0);
        assert_eq!(row(NetworkId::TwoPhaseArbitration).loss_factor, 8.0);
    }

    #[test]
    fn stated_factors_agree_with_link_budgets() {
        // Stated integer factors should be within 10% of the dB-derived
        // values (the paper itself rounds: 19.05 -> 19, 5.01 -> 5, ...).
        for n in [
            NetworkId::TokenRing,
            NetworkId::TwoPhaseData,
            NetworkId::TwoPhaseDataAlt,
        ] {
            let err = NetworkPower::loss_factor_error(n);
            assert!(err < 0.1, "{n}: relative error {err}");
        }
        // Circuit-switched: the paper's own rounding is loosest here — 31
        // switch hops at 0.5 dB is 15.5 dB (35.5x) which it calls
        // "approximate 30x increase in the laser power".
        assert!(NetworkPower::loss_factor_error(NetworkId::CircuitSwitched) < 0.2);
    }

    #[test]
    fn p2p_is_over_10x_more_power_efficient() {
        // Abstract claim: point-to-point is over 10x more power-efficient.
        let p2p = row(NetworkId::PointToPoint).laser.watts();
        assert!(row(NetworkId::TokenRing).laser.watts() / p2p > 10.0);
        assert!(row(NetworkId::CircuitSwitched).laser.watts() / p2p > 10.0);
    }

    #[test]
    fn tuning_power_scales_with_receivers() {
        let p2p = row(NetworkId::PointToPoint);
        let layout = Layout::macrochip();
        // 8192 receiver rings at 0.1 mW.
        assert!((p2p.tuning(&layout).watts() - 0.8192).abs() < 1e-9);
        assert!(p2p.static_total(&layout).value() > p2p.laser.value());
    }

    #[test]
    fn dynamic_energy_is_800_fj_per_byte() {
        assert!((dynamic_joules_per_byte() - 800e-15).abs() < 1e-20);
    }

    #[test]
    fn router_energy_is_60_pj_per_byte() {
        assert!((router_joules_per_byte() - 60e-12).abs() < 1e-20);
    }

    #[test]
    fn table5_has_all_rows() {
        assert_eq!(NetworkPower::table5(&Layout::macrochip()).len(), 8);
    }

    #[test]
    fn hierarchical_static_power_stays_low_at_scale() {
        // The headline scaling claim: at 16×16 (4x the sites) the flat
        // broadcast networks' laser power grows ~16x while the clustered
        // design stays within ~5x of its 8×8 figure.
        let l8 = Layout::macrochip();
        let l16 = Layout::new(16, 2.5, 0.1);
        let h8 = NetworkPower::for_network(NetworkId::Hierarchical, &l8);
        let h16 = NetworkPower::for_network(NetworkId::Hierarchical, &l16);
        assert!(h16.laser.watts() < 5.0 * h8.laser.watts());
        let ring16 = NetworkPower::for_network(NetworkId::TokenRing, &l16);
        assert!(h16.laser.watts() * 10.0 < ring16.laser.watts());
    }
}
