//! Always-on campaign service for the macrochip simulator.
//!
//! `macrochip serve` turns the one-shot campaign engine into a daemon: a
//! TCP listener speaking a line-delimited JSON protocol ([`proto`]), a
//! bounded job queue sharded across a worker pool ([`server`]), and a
//! typed client the CLI's `submit`/`status`/`result` subcommands are
//! built on ([`client`]).
//!
//! Three properties carry over from the batch engine unchanged:
//!
//! - **Determinism.** A served point runs through the same
//!   [`macrochip::campaign::run_point`] as a direct CLI invocation, with
//!   the same seed, so its result is byte-identical — results travel on
//!   the wire in the cache's bit-exact float encoding to keep it that
//!   way.
//! - **Dedupe for free.** Points are sharded to workers by their
//!   [`macrochip::campaign::point_key`] content hash, so duplicate points
//!   land on the same worker serially and the shared
//!   [`macrochip::campaign::ResultCache`] doubles as a dedupe table:
//!   warm submissions short-circuit before they ever reach a worker.
//! - **Observability.** Job progress streams the same `host.*` counters
//!   (`points_done`, `sim_events`, `packets`, `cache_hits`,
//!   `cache_misses`) the profiler records, as deltas since the job was
//!   accepted.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, JobStatus, Submitted};
pub use proto::{default_addr, Request, DEFAULT_ADDR, PROTOCOL_VERSION};
pub use server::{ServeOptions, Server, ShutdownHandle};
