//! A typed client for the serve protocol, used by `macrochip submit`,
//! `status`, `result`, `cancel` and `shutdown`.

use crate::proto::{self, Request};
use macrochip::campaign::{CampaignPoint, PointResult};
use macrochip::json::{self, Value};
use macrochip::progress::HostCounters;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// The server's answer to a `submit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submitted {
    pub job: String,
    /// `running`, or `done` when every point was served from the cache.
    pub state: String,
    pub points: usize,
    /// Points answered from the cache at submit time.
    pub warm: usize,
}

/// One `status` (or `watch`) reading of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    pub job: String,
    pub state: String,
    pub done: usize,
    pub total: usize,
    pub warm: usize,
    pub wall_ms: f64,
    /// `host.*` counter deltas since the job was accepted.
    pub counters: HostCounters,
}

impl JobStatus {
    pub fn terminal(&self) -> bool {
        self.state != "running"
    }
}

/// A connection to a running `macrochip serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (see [`proto::default_addr`] for the default).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One-line requests are tiny; without TCP_NODELAY each one can
        // stall ~40 ms behind the peer's delayed ACK (Nagle).
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send_line(&mut self, line: &str) -> Result<(), String> {
        // Single write: a line split across two segments re-opens the
        // Nagle/delayed-ACK window TCP_NODELAY closes.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer
            .write_all(&framed)
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn read_line(&mut self) -> Result<Value, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".to_string()),
            Ok(_) => {
                json::parse(line.trim_end_matches('\n')).map_err(|e| format!("bad response: {e}"))
            }
            Err(e) => Err(format!("receive failed: {e}")),
        }
    }

    /// Sends `req` and returns the (single-line) response object, already
    /// checked for `"ok": true`.
    pub fn request(&mut self, req: &Request) -> Result<Value, String> {
        self.send_line(&proto::encode_request(req))?;
        expect_ok(self.read_line()?)
    }

    /// Probes the server; returns the `ping` response object (`version`,
    /// `protocol`, `workers`, `queue_cap`, `cache`, ...).
    pub fn ping(&mut self) -> Result<Value, String> {
        let v = self.request(&Request::Ping)?;
        match v.get("protocol").and_then(Value::as_u64) {
            Some(proto::PROTOCOL_VERSION) => Ok(v),
            Some(other) => Err(format!(
                "protocol mismatch: server speaks v{other}, this client v{}",
                proto::PROTOCOL_VERSION
            )),
            None => Err("server did not report a protocol version".to_string()),
        }
    }

    /// Submits a job of `points` under `command`, optionally pinning every
    /// point's seed to `seed`.
    pub fn submit(
        &mut self,
        command: &str,
        seed: Option<u64>,
        points: Vec<CampaignPoint>,
    ) -> Result<Submitted, String> {
        let v = self.request(&Request::Submit {
            command: command.to_string(),
            seed,
            points,
        })?;
        Ok(Submitted {
            job: str_field(&v, "job")?,
            state: str_field(&v, "state")?,
            points: usize_field(&v, "points")?,
            warm: usize_field(&v, "warm")?,
        })
    }

    pub fn status(&mut self, job: &str) -> Result<JobStatus, String> {
        let v = self.request(&Request::Status {
            job: job.to_string(),
        })?;
        decode_status(&v)
    }

    /// Fetches a finished job's results, in point order, decoded from the
    /// bit-exact cache encoding.
    pub fn result(&mut self, job: &str) -> Result<Vec<PointResult>, String> {
        let v = self.request(&Request::Result {
            job: job.to_string(),
        })?;
        let raw = v
            .get("results")
            .and_then(Value::as_array)
            .ok_or("missing \"results\" array")?;
        raw.iter()
            .enumerate()
            .map(|(i, r)| {
                r.as_str()
                    .and_then(PointResult::from_cache_bytes)
                    .ok_or_else(|| format!("result {i} does not decode"))
            })
            .collect()
    }

    pub fn cancel(&mut self, job: &str) -> Result<(), String> {
        self.request(&Request::Cancel {
            job: job.to_string(),
        })
        .map(|_| ())
    }

    /// Asks the daemon to stop accepting work and exit.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    /// Streams progress events for `job` until it reaches a terminal
    /// state, invoking `on_progress` per event, and returns the final
    /// status as reported by the closing `end` event.
    pub fn wait(
        &mut self,
        job: &str,
        mut on_progress: impl FnMut(&JobStatus),
    ) -> Result<JobStatus, String> {
        self.send_line(&proto::encode_request(&Request::Watch {
            job: job.to_string(),
        }))?;
        loop {
            let v = expect_ok(self.read_line()?)?;
            let status = decode_status(&v)?;
            match v.get("event").and_then(Value::as_str) {
                Some("end") => return Ok(status),
                _ => on_progress(&status),
            }
        }
    }
}

fn expect_ok(v: Value) -> Result<Value, String> {
    if let Some(false) = v.get("ok").and_then(Value::as_bool) {
        let message = v
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("unspecified server error");
        return Err(message.to_string());
    }
    Ok(v)
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing \"{key}\" in response"))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| format!("missing \"{key}\" in response"))
}

fn decode_status(v: &Value) -> Result<JobStatus, String> {
    let counters = match v.get("counters") {
        Some(c) => HostCounters {
            points_done: u64_field(c, "points_done"),
            sim_events: u64_field(c, "sim_events"),
            packets: u64_field(c, "packets"),
            cache_hits: u64_field(c, "cache_hits"),
            cache_misses: u64_field(c, "cache_misses"),
        },
        None => HostCounters::default(),
    };
    Ok(JobStatus {
        job: str_field(v, "job")?,
        state: str_field(v, "state")?,
        done: usize_field(v, "done")?,
        total: usize_field(v, "total")?,
        warm: usize_field(v, "warm")?,
        wall_ms: v.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0),
        counters,
    })
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}
