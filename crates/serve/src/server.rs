//! The campaign daemon: listener, job registry, and sharded worker pool.
//!
//! Jobs enter through [`Server::run`]'s accept loop, are registered in a
//! bounded registry (at most `queue_cap` unfinished jobs — submissions
//! beyond that are rejected with a retryable error), and their cache-miss
//! points are fanned out to a fixed pool of worker threads. A point's
//! shard is `point_key % workers`, so identical points — within one job
//! or across concurrent jobs — serialize on the same worker, and the
//! second one finds the first one's [`ResultCache`] entry instead of
//! re-simulating.
//!
//! Lock order is `jobs` before `shard.queue`; workers take them in the
//! opposite order but never hold both, so the pair cannot deadlock.

use crate::proto::{self, Request, PROTOCOL_VERSION};
use desim::prof::{self, Counter};
use macrochip::campaign::{self, CampaignPoint, PointResult, ResultCache};
use macrochip::manifest::RunManifest;
use macrochip::progress::HostCounters;
use macrochip::sweep::SweepOptions;
use netcore::metrics::json_escape;
use netcore::MacrochipConfig;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often the accept loop polls the shutdown flag, and the cadence of
/// `watch` progress events.
const POLL: Duration = Duration::from_millis(25);
const WATCH_TICK: Duration = Duration::from_millis(200);

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads simulating points; 0 means one per available core
    /// (the same resolution as the CLI's `--jobs 0`).
    pub workers: usize,
    /// Maximum unfinished (queued or running) jobs; submissions beyond
    /// this are rejected with a retryable `queue full` error. Jobs whose
    /// points are all cache-warm complete at submit time and never count
    /// against the bound.
    pub queue_cap: usize,
    /// Result cache consulted before scheduling and filled after each
    /// simulated point; `None` disables the warm fast path entirely.
    pub cache: Option<ResultCache>,
    /// Where to record a [`RunManifest`] per finished (or cancelled)
    /// job, as `<job-id>.manifest.json`; `None` skips manifests.
    pub manifest_dir: Option<PathBuf>,
    /// Suppress per-job log lines on stderr.
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 0,
            queue_cap: 16,
            cache: None,
            manifest_dir: None,
            quiet: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Running,
    Done,
    Cancelled,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        self != JobState::Running
    }
}

struct Job {
    command: String,
    state: JobState,
    points: Vec<CampaignPoint>,
    keys: Vec<u64>,
    results: Vec<Option<PointResult>>,
    /// Points answered from the cache at submit time.
    warm: usize,
    /// Points with a recorded result (including warm ones).
    done: usize,
    /// Host counters at acceptance; progress reports deltas from here.
    base: HostCounters,
    started: Instant,
    /// Wall-clock of the finished job; 0 while running.
    wall_ms: f64,
}

struct Registry {
    jobs: HashMap<String, Job>,
    /// Jobs accepted but not yet terminal; bounded by `queue_cap`.
    unfinished: usize,
    /// Total jobs ever accepted; job ids are `job-<n>` from this.
    accepted: u64,
}

#[derive(Debug, Clone)]
struct WorkItem {
    job: String,
    index: usize,
}

#[derive(Default)]
struct Shard {
    queue: Mutex<VecDeque<WorkItem>>,
    ready: Condvar,
}

struct Shared {
    config: MacrochipConfig,
    workers: usize,
    queue_cap: usize,
    cache: Option<ResultCache>,
    manifest_dir: Option<PathBuf>,
    quiet: bool,
    jobs: Mutex<Registry>,
    shards: Vec<Shard>,
    shutdown: AtomicBool,
}

/// A bound, running campaign daemon. Construct with [`Server::bind`],
/// then drive the accept loop with [`Server::run`].
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts the worker pool. `addr` may use port 0 to
    /// let the OS pick (see [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: MacrochipConfig,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let workers = campaign::resolve_jobs(options.workers);
        let shared = Arc::new(Shared {
            config,
            workers,
            queue_cap: options.queue_cap.max(1),
            cache: options.cache,
            manifest_dir: options.manifest_dir,
            quiet: options.quiet,
            jobs: Mutex::new(Registry {
                jobs: HashMap::new(),
                unfinished: 0,
                accepted: 0,
            }),
            shards: (0..workers).map(|_| Shard::default()).collect(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Server {
            shared,
            listener,
            workers: handles,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Asks the accept loop and workers to wind down. Also triggered by
    /// a `shutdown` request on any connection.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// A handle that can stop the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves connections until shutdown is requested, then joins the
    /// worker pool. In-flight points finish; queued ones are abandoned.
    pub fn run(self) -> io::Result<()> {
        let Server {
            shared,
            listener,
            workers,
        } = self;
        if !shared.quiet {
            eprintln!(
                "macrochip-serve: listening on {} ({} workers, queue cap {}, cache {})",
                listener.local_addr()?,
                shared.workers,
                shared.queue_cap,
                shared
                    .cache
                    .as_ref()
                    .map_or("disabled".to_string(), |c| c.dir().display().to_string()),
            );
        }
        while !shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    let _ = std::thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || handle_conn(&shared, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => return Err(e),
            }
        }
        for handle in workers {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Stops a [`Server`] from outside its accept loop.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            // Touch the lock so sleeping workers can't miss the wakeup.
            drop(shard.queue.lock().unwrap());
            shard.ready.notify_all();
        }
    }

    /// Marks `job` terminal under the registry lock: stamps the wall
    /// clock, releases its queue slot, and writes its manifest.
    fn finish_job(&self, registry: &mut Registry, id: &str, state: JobState) {
        let Some(job) = registry.jobs.get_mut(id) else {
            return;
        };
        job.state = state;
        job.wall_ms = job.started.elapsed().as_secs_f64() * 1e3;
        registry.unfinished -= 1;
        if !self.quiet {
            eprintln!(
                "macrochip-serve: {id} {} ({}/{} points, {} warm, {:.0} ms)",
                state.name(),
                job.done,
                job.points.len(),
                job.warm,
                job.wall_ms,
            );
        }
        if let Some(dir) = &self.manifest_dir {
            let manifest = self.manifest_for(id, job, state);
            let path = dir.join(format!("{id}.manifest.json"));
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, manifest.to_json()))
            {
                if !self.quiet {
                    eprintln!(
                        "macrochip-serve: manifest {} not written: {e}",
                        path.display()
                    );
                }
            }
        }
    }

    fn manifest_for(&self, id: &str, job: &Job, state: JobState) -> RunManifest {
        let mut manifest = RunManifest::new(&job.command, &self.config);
        manifest.job_id = id.to_string();
        manifest.network = uniform(job.points.iter().map(CampaignPoint::kind))
            .map_or_else(|| "mixed".to_string(), |k| k.name().to_string());
        manifest.pattern = uniform(job.points.iter().map(CampaignPoint::tag))
            .unwrap_or("mixed")
            .to_string();
        manifest.seed = job.points.first().map_or(0, point_seed);
        manifest.outcome = match state {
            JobState::Done => "completed".to_string(),
            _ => format!("cancelled ({}/{} points done)", job.done, job.points.len()),
        };
        manifest.jobs = self.workers;
        manifest.cache = match &self.cache {
            Some(_) => format!("{}/{} points from cache", job.warm, job.points.len()),
            None => "disabled".to_string(),
        };
        if let Some(cache) = &self.cache {
            manifest.cache_dir = cache.dir().display().to_string();
        }
        manifest.set_host_stats(
            job.started.elapsed().as_secs_f64() * 1e3,
            job.base.sim_events,
        );
        manifest
    }
}

/// The single value of `iter`, or `None` if it is empty or mixed.
fn uniform<T: PartialEq>(mut iter: impl Iterator<Item = T>) -> Option<T> {
    let first = iter.next()?;
    iter.all(|v| v == first).then_some(first)
}

fn point_seed(point: &CampaignPoint) -> u64 {
    match point {
        CampaignPoint::Sweep {
            options: SweepOptions { seed, .. },
            ..
        }
        | CampaignPoint::Fault { seed, .. }
        | CampaignPoint::Coherent { seed, .. }
        | CampaignPoint::Replay { seed, .. } => *seed,
    }
}

fn worker_loop(shared: &Shared, shard_idx: usize) {
    let shard = &shared.shards[shard_idx];
    loop {
        let item = {
            let mut queue = shard.queue.lock().unwrap();
            loop {
                if let Some(item) = queue.pop_front() {
                    break Some(item);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shard.ready.wait(queue).unwrap();
            }
        };
        let Some(item) = item else {
            return;
        };
        // Snapshot the point while the job is still live; a cancelled or
        // unknown job's leftover queue items are dropped here.
        let staged = {
            let registry = shared.jobs.lock().unwrap();
            registry.jobs.get(&item.job).and_then(|job| {
                (job.state == JobState::Running)
                    .then(|| (job.points[item.index].clone(), job.keys[item.index]))
            })
        };
        let Some((point, key)) = staged else {
            continue;
        };
        // Re-probe the cache: a duplicate point (same key, hence same
        // shard) may have been simulated since submit-time probing.
        let result = match shared.cache.as_ref().and_then(|c| c.load(key)) {
            Some(result) => result,
            None => {
                let result = campaign::run_point(&point, &shared.config);
                if result.cacheable() {
                    if let Some(cache) = &shared.cache {
                        let _ = cache.store(key, &result);
                    }
                }
                result
            }
        };
        prof::add(Counter::PointsDone, 1);
        // Record under the registry lock; results of since-cancelled jobs
        // are discarded (the cache entry above still counts).
        let mut registry = shared.jobs.lock().unwrap();
        let record = registry
            .jobs
            .get_mut(&item.job)
            .filter(|job| job.state == JobState::Running)
            .map(|job| {
                job.results[item.index] = Some(result);
                job.done += 1;
                job.done == job.points.len()
            });
        if record == Some(true) {
            shared.finish_job(&mut registry, &item.job, JobState::Done);
        }
    }
}

fn counters_json(delta: &HostCounters) -> String {
    format!(
        "{{\"points_done\":{},\"sim_events\":{},\"packets\":{},\
         \"cache_hits\":{},\"cache_misses\":{}}}",
        delta.points_done, delta.sim_events, delta.packets, delta.cache_hits, delta.cache_misses,
    )
}

fn error_line(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(message))
}

fn send(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    // One write per line: a trailing-newline segment of its own would
    // sit out a ~40 ms delayed-ACK round under Nagle.
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    stream.write_all(&framed)?;
    stream.flush()
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    // Accepted sockets must block: the protocol is strictly one request
    // line in, one (or, for watch, several) response lines out.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Response lines are tiny; don't let Nagle hold them for an ACK.
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        // A malformed request gets an error line, and the connection
        // stays usable for the next request.
        let reply_sent = match proto::decode_request(&line) {
            Err(e) => send(&mut writer, &error_line(&e)),
            Ok(Request::Ping) => send(&mut writer, &ping_line(shared)),
            Ok(Request::Shutdown) => {
                let _ = send(&mut writer, "{\"ok\":true,\"shutting_down\":true}");
                shared.request_shutdown();
                return;
            }
            Ok(Request::Submit {
                command,
                seed,
                points,
            }) => {
                let reply = handle_submit(shared, &command, seed, points);
                send(&mut writer, &reply)
            }
            Ok(Request::Status { job }) => send(&mut writer, &status_line(shared, &job)),
            Ok(Request::Result { job }) => send(&mut writer, &result_line(shared, &job)),
            Ok(Request::Cancel { job }) => send(&mut writer, &cancel_line(shared, &job)),
            Ok(Request::Watch { job }) => handle_watch(shared, &mut writer, &job),
        };
        if reply_sent.is_err() {
            return;
        }
    }
}

fn ping_line(shared: &Shared) -> String {
    let registry = shared.jobs.lock().unwrap();
    format!(
        "{{\"ok\":true,\"server\":\"macrochip-serve\",\"version\":\"{}\",\
         \"protocol\":{PROTOCOL_VERSION},\"workers\":{},\"queue_cap\":{},\
         \"cache\":\"{}\",\"jobs\":{},\"unfinished\":{}}}",
        json_escape(env!("CARGO_PKG_VERSION")),
        shared.workers,
        shared.queue_cap,
        json_escape(
            &shared
                .cache
                .as_ref()
                .map_or("disabled".to_string(), |c| c.dir().display().to_string())
        ),
        registry.accepted,
        registry.unfinished,
    )
}

fn handle_submit(
    shared: &Shared,
    command: &str,
    seed: Option<u64>,
    mut points: Vec<CampaignPoint>,
) -> String {
    if let Some(seed) = seed {
        proto::apply_seed(&mut points, seed);
    }
    // Baseline before the cache probe, so a warm job's progress counters
    // show its cache hits rather than an empty delta.
    let base = HostCounters::snapshot();
    let keys: Vec<u64> = points
        .iter()
        .map(|p| campaign::point_key(p, &shared.config))
        .collect();
    // Probe the cache before taking the registry lock: warm points are
    // the fast path and must not serialize behind it.
    let mut results: Vec<Option<PointResult>> = vec![None; points.len()];
    let mut warm = 0;
    if let Some(cache) = &shared.cache {
        for (slot, key) in results.iter_mut().zip(&keys) {
            if let Some(result) = cache.load(*key) {
                *slot = Some(result);
                warm += 1;
                prof::add(Counter::PointsDone, 1);
            }
        }
    }
    let total = points.len();
    let all_warm = warm == total;
    let misses: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    let mut registry = shared.jobs.lock().unwrap();
    // All-warm jobs finish at submit time and never hold a queue slot,
    // so the warm fast path keeps working even under backpressure.
    if !all_warm && registry.unfinished >= shared.queue_cap {
        return format!(
            "{{\"ok\":false,\"error\":\"queue full ({} unfinished jobs, cap {}); retry later\",\
             \"retryable\":true}}",
            registry.unfinished, shared.queue_cap,
        );
    }
    registry.accepted += 1;
    let id = format!("job-{}", registry.accepted);
    registry.jobs.insert(
        id.clone(),
        Job {
            command: command.to_string(),
            state: JobState::Running,
            points,
            keys: keys.clone(),
            results,
            warm,
            done: warm,
            base,
            started: Instant::now(),
            wall_ms: 0.0,
        },
    );
    registry.unfinished += 1;
    if all_warm {
        shared.finish_job(&mut registry, &id, JobState::Done);
    }
    let state = registry.jobs[&id].state;
    drop(registry);
    // Fan cache misses out to shards by content hash; duplicates land on
    // the same worker, so the cache dedupes them.
    for index in misses {
        let shard = &shared.shards
            [usize::try_from(keys[index] % shared.workers as u64).expect("shard index fits usize")];
        shard.queue.lock().unwrap().push_back(WorkItem {
            job: id.clone(),
            index,
        });
        shard.ready.notify_one();
    }
    format!(
        "{{\"ok\":true,\"job\":\"{}\",\"state\":\"{}\",\"points\":{total},\"warm\":{warm}}}",
        json_escape(&id),
        state.name(),
    )
}

/// Status fields shared by `status` responses and `watch` events.
fn job_snapshot(job: &Job) -> (JobState, usize, usize, usize, f64, HostCounters) {
    let wall_ms = if job.state.terminal() {
        job.wall_ms
    } else {
        job.started.elapsed().as_secs_f64() * 1e3
    };
    let delta = HostCounters::snapshot().since(&job.base);
    (
        job.state,
        job.done,
        job.points.len(),
        job.warm,
        wall_ms,
        delta,
    )
}

fn status_line(shared: &Shared, id: &str) -> String {
    let registry = shared.jobs.lock().unwrap();
    let Some(job) = registry.jobs.get(id) else {
        return error_line(&format!("unknown job {id:?}"));
    };
    let (state, done, total, warm, wall_ms, delta) = job_snapshot(job);
    format!(
        "{{\"ok\":true,\"job\":\"{}\",\"state\":\"{}\",\"done\":{done},\"total\":{total},\
         \"warm\":{warm},\"wall_ms\":{:.3},\"counters\":{}}}",
        json_escape(id),
        state.name(),
        wall_ms,
        counters_json(&delta),
    )
}

fn result_line(shared: &Shared, id: &str) -> String {
    let registry = shared.jobs.lock().unwrap();
    let Some(job) = registry.jobs.get(id) else {
        return error_line(&format!("unknown job {id:?}"));
    };
    match job.state {
        JobState::Running => error_line(&format!(
            "job {id} is still running ({}/{} points done)",
            job.done,
            job.points.len(),
        )),
        JobState::Cancelled => error_line(&format!("job {id} was cancelled")),
        JobState::Done => {
            let mut out = format!(
                "{{\"ok\":true,\"job\":\"{}\",\"state\":\"done\",\"warm\":{},\"results\":[",
                json_escape(id),
                job.warm,
            );
            for (i, result) in job.results.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let result = result.as_ref().expect("done job has every result");
                // The cache encoding is the wire encoding: bit-exact
                // floats, and json_escape turns its newlines into \n so
                // the response stays one line.
                let _ = write!(out, "\"{}\"", json_escape(&result.to_cache_bytes()));
            }
            out.push_str("]}");
            out
        }
    }
}

fn cancel_line(shared: &Shared, id: &str) -> String {
    let mut registry = shared.jobs.lock().unwrap();
    let Some(job) = registry.jobs.get(id) else {
        return error_line(&format!("unknown job {id:?}"));
    };
    if job.state.terminal() {
        return error_line(&format!("job {id} is already {}", job.state.name()));
    }
    // Queued work items are dropped lazily: workers skip items whose job
    // is no longer Running. In-flight points finish and feed the cache,
    // but their results are discarded.
    shared.finish_job(&mut registry, id, JobState::Cancelled);
    format!(
        "{{\"ok\":true,\"job\":\"{}\",\"state\":\"cancelled\"}}",
        json_escape(id)
    )
}

fn handle_watch(shared: &Shared, writer: &mut TcpStream, id: &str) -> io::Result<()> {
    loop {
        let snapshot = {
            let registry = shared.jobs.lock().unwrap();
            registry.jobs.get(id).map(job_snapshot)
        };
        let Some((state, done, total, warm, wall_ms, delta)) = snapshot else {
            return send(writer, &error_line(&format!("unknown job {id:?}")));
        };
        if state.terminal() {
            return send(
                writer,
                &format!(
                    "{{\"event\":\"end\",\"job\":\"{}\",\"state\":\"{}\",\"done\":{done},\
                     \"total\":{total},\"warm\":{warm},\"wall_ms\":{wall_ms:.3}}}",
                    json_escape(id),
                    state.name(),
                ),
            );
        }
        send(
            writer,
            &format!(
                "{{\"event\":\"progress\",\"job\":\"{}\",\"state\":\"running\",\"done\":{done},\
                 \"total\":{total},\"warm\":{warm},\"wall_ms\":{wall_ms:.3},\"counters\":{}}}",
                json_escape(id),
                counters_json(&delta),
            ),
        )?;
        if shared.shutdown.load(Ordering::SeqCst) {
            return send(
                writer,
                &format!(
                    "{{\"event\":\"end\",\"job\":\"{}\",\"state\":\"running\",\
                     \"done\":{done},\"total\":{total},\"warm\":{warm},\
                     \"wall_ms\":{wall_ms:.3},\"note\":\"server shutting down\"}}",
                    json_escape(id),
                ),
            );
        }
        std::thread::sleep(WATCH_TICK);
    }
}
