//! The line-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line (`\n`-terminated). The only exception is
//! `watch`, where the server streams multiple `{"event": ...}` lines for
//! one request, ending with `{"event": "end", ...}`.
//!
//! Campaign points travel as JSON objects built from the same canonical
//! names the CLI uses ([`macrochip::names`]); results travel as
//! [`PointResult::to_cache_bytes`] strings, the simulator's bit-exact
//! float encoding, so a served result is comparable byte-for-byte with a
//! direct `run_point` — the serve acceptance check is `assert_eq!` on
//! those strings, not an epsilon.
//!
//! Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"submit","command":"sweep","seed":7,"points":[{...},...]}
//! {"op":"status","job":"job-1"}
//! {"op":"result","job":"job-1"}
//! {"op":"cancel","job":"job-1"}
//! {"op":"watch","job":"job-1"}
//! {"op":"shutdown"}
//! ```

use macrochip::campaign::CampaignPoint;
use macrochip::json::{self, Value};
use macrochip::names;
use macrochip::sweep::SweepOptions;
use netcore::metrics::{json_escape, json_f64};
use std::fmt::Write as _;
use workloads::SharingMix;

/// Wire protocol version, reported by `ping` and checked by clients.
pub const PROTOCOL_VERSION: u64 = 1;

/// Default serve address when `MACROCHIP_SERVE_ADDR` is unset.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7447";

/// The address clients and the daemon bind/connect by default:
/// `$MACROCHIP_SERVE_ADDR`, falling back to [`DEFAULT_ADDR`].
pub fn default_addr() -> String {
    match std::env::var("MACROCHIP_SERVE_ADDR") {
        Ok(addr) if !addr.is_empty() => addr,
        _ => DEFAULT_ADDR.to_string(),
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Ping,
    Submit {
        /// Label recorded in the job's manifest (e.g. `sweep`).
        command: String,
        /// Optional job seed; when present it overrides the seed of every
        /// point, so one number pins the whole job deterministically.
        seed: Option<u64>,
        points: Vec<CampaignPoint>,
    },
    Status {
        job: String,
    },
    Result {
        job: String,
    },
    Cancel {
        job: String,
    },
    Watch {
        job: String,
    },
    Shutdown,
}

/// Serializes one campaign point as a wire object.
pub fn encode_point(point: &CampaignPoint) -> String {
    let mut s = String::from("{");
    match point {
        CampaignPoint::Sweep {
            kind,
            pattern,
            offered,
            options,
        } => {
            let _ = write!(
                s,
                "\"type\":\"sweep\",\"network\":\"{}\",\"pattern\":\"{}\",\"offered\":{},\
                 \"sim_ps\":{},\"drain_ps\":{},\"max_stalled\":{},\"seed\":{}",
                names::network_code(*kind),
                names::pattern_code(*pattern),
                json_f64(*offered),
                options.sim.as_ps(),
                options.drain.as_ps(),
                options.max_stalled,
                options.seed,
            );
        }
        CampaignPoint::Fault {
            kind,
            pattern,
            load,
            plan,
            seed,
            sim,
            drain,
            max_stalled,
        } => {
            let _ = write!(
                s,
                "\"type\":\"fault\",\"network\":\"{}\",\"pattern\":\"{}\",\"load\":{},\
                 \"plan\":\"{}\",\"seed\":{},\"sim_ps\":{},\"drain_ps\":{},\"max_stalled\":{}",
                names::network_code(*kind),
                names::pattern_code(*pattern),
                json_f64(*load),
                json_escape(&plan.to_spec()),
                seed,
                sim.as_ps(),
                drain.as_ps(),
                max_stalled,
            );
        }
        CampaignPoint::Coherent { kind, spec, seed } => {
            let (workload, ops, mix) = match spec {
                macrochip::experiment::WorkloadSpec::App(p) => {
                    (p.name.to_string(), p.ops_per_core, "less")
                }
                macrochip::experiment::WorkloadSpec::Synthetic {
                    pattern,
                    mix,
                    ops_per_core,
                } => (
                    names::pattern_code(*pattern).to_string(),
                    *ops_per_core,
                    match mix {
                        SharingMix::LessSharing => "less",
                        SharingMix::MoreSharing => "more",
                    },
                ),
            };
            let _ = write!(
                s,
                "\"type\":\"coherent\",\"network\":\"{}\",\"workload\":\"{}\",\"ops\":{ops},\
                 \"mix\":\"{mix}\",\"seed\":{seed}",
                names::network_code(*kind),
                json_escape(&workload),
            );
        }
        CampaignPoint::Replay {
            kind,
            trace,
            content_hash,
            plan,
            seed,
            drain,
            max_stalled,
        } => {
            let _ = write!(
                s,
                "\"type\":\"replay\",\"network\":\"{}\",\"trace\":\"{}\",\
                 \"content_hash\":\"{content_hash:016x}\",",
                names::network_code(*kind),
                json_escape(trace),
            );
            match plan {
                Some(p) => {
                    let _ = write!(s, "\"plan\":\"{}\",", json_escape(&p.to_spec()));
                }
                None => s.push_str("\"plan\":null,"),
            }
            let _ = write!(
                s,
                "\"seed\":{seed},\"drain_ps\":{},\"max_stalled\":{}",
                drain.as_ps(),
                max_stalled,
            );
        }
    }
    s.push('}');
    s
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or invalid \"{key}\""))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-number \"{key}\""))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(u64_field(v, key)?).map_err(|_| format!("\"{key}\" out of range"))
}

fn network_field(v: &Value) -> Result<netcore::NetworkKind, String> {
    let code = str_field(v, "network")?;
    names::parse_network(code).ok_or_else(|| format!("unknown network {code:?}"))
}

fn pattern_field(v: &Value) -> Result<workloads::Pattern, String> {
    let code = str_field(v, "pattern")?;
    names::parse_pattern(code).ok_or_else(|| format!("unknown pattern {code:?}"))
}

fn plan_field(spec: &str) -> Result<faults::FaultPlan, String> {
    faults::FaultPlan::parse(spec).map_err(|e| format!("bad fault plan: {e}"))
}

/// Parses one campaign point from a wire object.
pub fn decode_point(v: &Value) -> Result<CampaignPoint, String> {
    match str_field(v, "type")? {
        "sweep" => Ok(CampaignPoint::Sweep {
            kind: network_field(v)?,
            pattern: pattern_field(v)?,
            offered: f64_field(v, "offered")?,
            options: SweepOptions {
                sim: desim::Span::from_ps(u64_field(v, "sim_ps")?),
                drain: desim::Span::from_ps(u64_field(v, "drain_ps")?),
                max_stalled: usize_field(v, "max_stalled")?,
                seed: u64_field(v, "seed")?,
            },
        }),
        "fault" => Ok(CampaignPoint::Fault {
            kind: network_field(v)?,
            pattern: pattern_field(v)?,
            load: f64_field(v, "load")?,
            plan: plan_field(str_field(v, "plan")?)?,
            seed: u64_field(v, "seed")?,
            sim: desim::Span::from_ps(u64_field(v, "sim_ps")?),
            drain: desim::Span::from_ps(u64_field(v, "drain_ps")?),
            max_stalled: usize_field(v, "max_stalled")?,
        }),
        "coherent" => {
            let name = str_field(v, "workload")?;
            let ops = u32::try_from(u64_field(v, "ops")?).map_err(|_| "\"ops\" out of range")?;
            let mut spec = names::parse_workload(name, ops)
                .ok_or_else(|| format!("unknown workload {name:?}"))?;
            if let Some("more") = v.get("mix").and_then(Value::as_str) {
                if let macrochip::experiment::WorkloadSpec::Synthetic { mix, .. } = &mut spec {
                    *mix = SharingMix::MoreSharing;
                }
            }
            Ok(CampaignPoint::Coherent {
                kind: network_field(v)?,
                spec,
                seed: u64_field(v, "seed")?,
            })
        }
        "replay" => {
            let hash = str_field(v, "content_hash")?;
            let plan = match v.get("plan") {
                None | Some(Value::Null) => None,
                Some(Value::String(spec)) => Some(plan_field(spec)?),
                Some(_) => return Err("\"plan\" must be a string or null".into()),
            };
            Ok(CampaignPoint::Replay {
                kind: network_field(v)?,
                trace: str_field(v, "trace")?.to_string(),
                content_hash: u64::from_str_radix(hash, 16)
                    .map_err(|_| format!("bad content_hash {hash:?}"))?,
                plan,
                seed: u64_field(v, "seed")?,
                drain: desim::Span::from_ps(u64_field(v, "drain_ps")?),
                max_stalled: usize_field(v, "max_stalled")?,
            })
        }
        other => Err(format!("unknown point type {other:?}")),
    }
}

/// Serializes a request as one wire line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Ping => "{\"op\":\"ping\"}".to_string(),
        Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        Request::Status { job } => {
            format!("{{\"op\":\"status\",\"job\":\"{}\"}}", json_escape(job))
        }
        Request::Result { job } => {
            format!("{{\"op\":\"result\",\"job\":\"{}\"}}", json_escape(job))
        }
        Request::Cancel { job } => {
            format!("{{\"op\":\"cancel\",\"job\":\"{}\"}}", json_escape(job))
        }
        Request::Watch { job } => format!("{{\"op\":\"watch\",\"job\":\"{}\"}}", json_escape(job)),
        Request::Submit {
            command,
            seed,
            points,
        } => {
            let mut s = format!(
                "{{\"op\":\"submit\",\"command\":\"{}\",",
                json_escape(command)
            );
            if let Some(seed) = seed {
                let _ = write!(s, "\"seed\":{seed},");
            }
            s.push_str("\"points\":[");
            for (i, p) in points.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&encode_point(p));
            }
            s.push_str("]}");
            s
        }
    }
}

/// Parses one request line.
pub fn decode_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    match str_field(&v, "op")? {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "status" => Ok(Request::Status {
            job: str_field(&v, "job")?.to_string(),
        }),
        "result" => Ok(Request::Result {
            job: str_field(&v, "job")?.to_string(),
        }),
        "cancel" => Ok(Request::Cancel {
            job: str_field(&v, "job")?.to_string(),
        }),
        "watch" => Ok(Request::Watch {
            job: str_field(&v, "job")?.to_string(),
        }),
        "submit" => {
            let seed = match v.get("seed") {
                None | Some(Value::Null) => None,
                Some(s) => Some(
                    s.as_u64()
                        .ok_or("\"seed\" must be a non-negative integer")?,
                ),
            };
            let raw = v
                .get("points")
                .and_then(Value::as_array)
                .ok_or("missing \"points\" array")?;
            if raw.is_empty() {
                return Err("a job needs at least one point".into());
            }
            let points = raw
                .iter()
                .enumerate()
                .map(|(i, p)| decode_point(p).map_err(|e| format!("point {i}: {e}")))
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Request::Submit {
                command: str_field(&v, "command")?.to_string(),
                seed,
                points,
            })
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Forces `seed` onto every point of a job (the submit-level override):
/// one number pins the whole job, mirroring the CLI's single `--seed`.
pub fn apply_seed(points: &mut [CampaignPoint], seed: u64) {
    for point in points {
        match point {
            CampaignPoint::Sweep { options, .. } => options.seed = seed,
            CampaignPoint::Fault { seed: s, .. }
            | CampaignPoint::Coherent { seed: s, .. }
            | CampaignPoint::Replay { seed: s, .. } => *s = seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Span;
    use netcore::NetworkKind;
    use workloads::Pattern;

    fn sample_points() -> Vec<CampaignPoint> {
        vec![
            CampaignPoint::Sweep {
                kind: NetworkKind::TwoPhase,
                pattern: Pattern::Transpose,
                offered: 0.137,
                options: SweepOptions {
                    sim: Span::from_us(1),
                    drain: Span::from_us(5),
                    max_stalled: 5_000,
                    seed: 0xC0FFEE,
                },
            },
            CampaignPoint::Fault {
                kind: NetworkKind::TokenRing,
                pattern: Pattern::Uniform,
                load: 0.05,
                plan: faults::FaultPlan::parse("rand-links=2; transient=0.01; repair=10us")
                    .expect("valid plan"),
                seed: 7,
                sim: Span::from_us(1),
                drain: Span::from_us(5),
                max_stalled: 5_000,
            },
            CampaignPoint::Coherent {
                kind: NetworkKind::PointToPoint,
                spec: names::parse_workload("Swaptions", 40).expect("suite workload"),
                seed: 0xCAFE,
            },
            CampaignPoint::Coherent {
                kind: NetworkKind::CircuitSwitched,
                spec: macrochip::experiment::WorkloadSpec::Synthetic {
                    pattern: Pattern::Transpose,
                    mix: SharingMix::MoreSharing,
                    ops_per_core: 10,
                },
                seed: 1,
            },
            CampaignPoint::Replay {
                kind: NetworkKind::LimitedPointToPoint,
                trace: "traces/run one.mtrc".to_string(),
                content_hash: 0xDEAD_BEEF_0BAD_F00D,
                plan: Some(faults::FaultPlan::parse("rand-links=1").expect("valid plan")),
                seed: 3,
                drain: Span::from_us(20),
                max_stalled: 5_000,
            },
        ]
    }

    #[test]
    fn points_round_trip_through_the_wire_encoding() {
        for point in sample_points() {
            let wire = encode_point(&point);
            let v = json::parse(&wire).expect("wire point is valid JSON");
            let back = decode_point(&v).expect("decodes");
            assert_eq!(back, point, "wire: {wire}");
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Shutdown,
            Request::Status {
                job: "job-1".into(),
            },
            Request::Result {
                job: "job-2".into(),
            },
            Request::Cancel {
                job: "job-3".into(),
            },
            Request::Watch {
                job: "job-4".into(),
            },
            Request::Submit {
                command: "sweep".into(),
                seed: Some(42),
                points: sample_points(),
            },
            Request::Submit {
                command: "faults".into(),
                seed: None,
                points: sample_points()[..1].to_vec(),
            },
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert!(!line.contains('\n'), "one request = one line: {line}");
            assert_eq!(decode_request(&line).expect("decodes"), req, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(decode_request("not json")
            .unwrap_err()
            .contains("malformed JSON"));
        assert!(decode_request("{\"no_op\":1}")
            .unwrap_err()
            .contains("\"op\""));
        assert!(decode_request("{\"op\":\"dance\"}")
            .unwrap_err()
            .contains("unknown op"));
        assert!(decode_request("{\"op\":\"status\"}")
            .unwrap_err()
            .contains("\"job\""));
        let empty = "{\"op\":\"submit\",\"command\":\"sweep\",\"points\":[]}";
        assert!(decode_request(empty)
            .unwrap_err()
            .contains("at least one point"));
        let bad_point =
            "{\"op\":\"submit\",\"command\":\"sweep\",\"points\":[{\"type\":\"sweep\"}]}";
        assert!(decode_request(bad_point).unwrap_err().contains("point 0"));
        let bad_net = "{\"op\":\"submit\",\"command\":\"s\",\"points\":[{\"type\":\"sweep\",\
                       \"network\":\"warp\",\"pattern\":\"uniform\",\"offered\":0.1,\
                       \"sim_ps\":1,\"drain_ps\":1,\"max_stalled\":1,\"seed\":1}]}";
        assert!(decode_request(bad_net)
            .unwrap_err()
            .contains("unknown network"));
    }

    #[test]
    fn job_seed_overrides_every_point() {
        let mut points = sample_points();
        apply_seed(&mut points, 99);
        for p in &points {
            let seed = match p {
                CampaignPoint::Sweep { options, .. } => options.seed,
                CampaignPoint::Fault { seed, .. }
                | CampaignPoint::Coherent { seed, .. }
                | CampaignPoint::Replay { seed, .. } => *seed,
            };
            assert_eq!(seed, 99);
        }
    }

    #[test]
    fn offered_loads_round_trip_bit_exactly() {
        // The cache key hashes the load's bits; the wire must preserve
        // them exactly or a served job would miss the direct run's entry.
        for &offered in &[0.1, 1.0 / 3.0, 0.137, f64::from_bits(0x3FB9_9999_9999_999A)] {
            let point = CampaignPoint::Sweep {
                kind: NetworkKind::PointToPoint,
                pattern: Pattern::Uniform,
                offered,
                options: SweepOptions::default(),
            };
            let v = json::parse(&encode_point(&point)).unwrap();
            let CampaignPoint::Sweep { offered: back, .. } = decode_point(&v).unwrap() else {
                unreachable!();
            };
            assert_eq!(back.to_bits(), offered.to_bits());
        }
    }
}
