//! Deterministic replay: a [`PacketSource`] that streams packets out of a
//! `.mtrc` trace.
//!
//! The capture stream is globally sorted by creation time (the driver
//! visits emissions in time order), so replay is a pure merge: the source
//! offers the front packet's `created` instant as its next emission and
//! releases every packet due by `now`. Driving any network with a
//! `TraceSource` therefore reproduces the captured injection schedule
//! exactly — and replaying through the *same* network configuration
//! reproduces the original run byte-for-byte.
//!
//! Memory stays O(block): one decoded block is buffered at a time. A
//! mid-stream decode or CRC failure *poisons* the source — it stops
//! emitting and reports the error through [`TraceSource::error`] — rather
//! than panicking inside the simulation loop.

use crate::format::{TraceError, TraceHeader, TraceReader};
use desim::Time;
use netcore::{Packet, PacketSource};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// A [`PacketSource`] replaying a captured trace.
pub struct TraceSource<R: Read> {
    reader: TraceReader<R>,
    buffer: VecDeque<Packet>,
    scratch: Vec<Packet>,
    error: Option<TraceError>,
    end_of_trace: bool,
    emitted: u64,
    delivered: u64,
}

impl TraceSource<BufReader<File>> {
    /// Opens a trace file for replay.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Ok(TraceSource::new(crate::format::open_file(path)?))
    }
}

impl<R: Read> TraceSource<R> {
    /// Wraps an open reader, buffering its first block.
    pub fn new(reader: TraceReader<R>) -> TraceSource<R> {
        let mut source = TraceSource {
            reader,
            buffer: VecDeque::new(),
            scratch: Vec::new(),
            error: None,
            end_of_trace: false,
            emitted: 0,
            delivered: 0,
        };
        source.refill();
        source
    }

    /// The trace's header.
    pub fn header(&self) -> &TraceHeader {
        self.reader.header()
    }

    /// Packets handed to the driver so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Deliveries observed so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The error that poisoned this source, if any. A poisoned source
    /// emits nothing further and reports itself exhausted; callers that
    /// need hard guarantees should check this after the run (or
    /// [`validate`](crate::format::validate) the trace up front).
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// True when replay stopped early because the trace was corrupt.
    pub fn is_poisoned(&self) -> bool {
        self.error.is_some()
    }

    /// Maintains the invariant that `buffer` is non-empty unless the trace
    /// is finished or poisoned, so `next_emission` (which cannot refill
    /// through `&self`) always sees the true next instant.
    fn refill(&mut self) {
        while self.buffer.is_empty() && !self.end_of_trace && self.error.is_none() {
            match self.reader.next_block(&mut self.scratch) {
                Ok(0) => self.end_of_trace = true,
                Ok(_) => self.buffer.extend(self.scratch.drain(..)),
                Err(e) => {
                    self.error = Some(e);
                }
            }
        }
    }
}

impl<R: Read> PacketSource for TraceSource<R> {
    fn next_emission(&self) -> Option<Time> {
        self.buffer.front().map(|p| p.created)
    }

    fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>) {
        loop {
            while let Some(front) = self.buffer.front() {
                if front.created > now {
                    return;
                }
                out.push(self.buffer.pop_front().expect("front exists"));
                self.emitted += 1;
            }
            self.refill();
            if self.buffer.is_empty() {
                return;
            }
        }
    }

    fn on_delivered(&mut self, _packet: &Packet, _now: Time) {
        self.delivered += 1;
    }

    fn is_exhausted(&self) -> bool {
        self.buffer.is_empty() && (self.end_of_trace || self.error.is_some())
    }

    /// Replay follows the captured schedule regardless of deliveries
    /// (only a counter updates), so the driver may batch network events
    /// between emissions.
    fn reacts_to_delivery(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TraceMeta, TraceWriter, HEADER_FIXED};
    use desim::Time;
    use netcore::{MessageKind, PacketId, SiteId};
    use std::io::Cursor;

    fn packet(id: u64, ps: u64) -> Packet {
        Packet::new(
            PacketId(id),
            SiteId::from_index((id % 64) as usize),
            SiteId::from_index(((id + 3) % 64) as usize),
            64,
            MessageKind::Data,
            Time::from_ps(ps),
        )
    }

    fn trace_bytes(packets: &[Packet]) -> Vec<u8> {
        let meta = TraceMeta {
            grid_side: 8,
            seed: 1,
            description: "source test".into(),
        };
        let mut w = TraceWriter::create(Cursor::new(Vec::new()), &meta).expect("create");
        for p in packets {
            w.record(p).expect("record");
        }
        w.finish().expect("finish").0.into_inner()
    }

    #[test]
    fn replays_in_captured_order() {
        let packets: Vec<Packet> = (0..500).map(|i| packet(i, i * 100)).collect();
        let mut src =
            TraceSource::new(TraceReader::new(Cursor::new(trace_bytes(&packets))).expect("open"));
        assert_eq!(src.next_emission(), Some(Time::from_ps(0)));
        let mut out = Vec::new();
        src.emit_due(Time::from_ps(250), &mut out);
        assert_eq!(out.len(), 3); // created at 0, 100, 200
        assert!(!src.is_exhausted());
        out.clear();
        src.emit_due(Time::from_ps(u64::MAX / 2), &mut out);
        assert_eq!(out.len(), 497);
        assert!(src.is_exhausted());
        assert_eq!(src.emitted(), 500);
        assert!(src.error().is_none());
    }

    #[test]
    fn emission_crosses_block_boundaries_at_one_instant() {
        // Many packets at the same instant, enough to span blocks: one
        // emit_due must surface all of them.
        let packets: Vec<Packet> = (0..30_000).map(|i| packet(i, 42)).collect();
        let mut src =
            TraceSource::new(TraceReader::new(Cursor::new(trace_bytes(&packets))).expect("open"));
        let mut out = Vec::new();
        src.emit_due(Time::from_ps(42), &mut out);
        assert_eq!(out.len(), 30_000);
        assert!(src.is_exhausted());
    }

    #[test]
    fn corrupt_block_poisons_instead_of_panicking() {
        let packets: Vec<Packet> = (0..60_000).map(|i| packet(i, i)).collect();
        let mut bytes = trace_bytes(&packets);
        // Flip a byte deep in the stream (beyond the first block).
        let target = bytes.len() - 2048;
        bytes[target] ^= 0x10;
        assert!(target > HEADER_FIXED + 64 * 1024, "must hit a later block");
        let mut src = TraceSource::new(TraceReader::new(Cursor::new(bytes)).expect("open"));
        let mut out = Vec::new();
        src.emit_due(Time::from_ps(u64::MAX / 2), &mut out);
        assert!(src.is_poisoned());
        assert!(src.is_exhausted());
        assert!(out.len() < 60_000, "corrupt tail must not be emitted");
        let msg = src.error().expect("error retained").to_string();
        assert!(msg.contains("corrupt trace block"), "{msg}");
    }

    #[test]
    fn delivery_counting() {
        let packets: Vec<Packet> = (0..4).map(|i| packet(i, i * 10)).collect();
        let mut src =
            TraceSource::new(TraceReader::new(Cursor::new(trace_bytes(&packets))).expect("open"));
        let mut out = Vec::new();
        src.emit_due(Time::from_ps(1000), &mut out);
        for p in &out {
            src.on_delivered(p, Time::from_ps(2000));
        }
        assert_eq!(src.delivered(), 4);
    }
}
