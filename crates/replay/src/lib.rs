//! Trace capture & replay for the macrochip simulator.
//!
//! The paper's evaluation methodology is **trace-driven** (§5): every
//! network architecture is judged on *identical* traffic. This crate makes
//! that concrete. A run of any workload — synthetic pattern, sharing mix
//! or app kernel — can be *captured* into a compact binary trace
//! (`.mtrc`), archived with its provenance, transformed, and *replayed*
//! deterministically through any of the five networks, under fault plans,
//! and inside the parallel campaign engine.
//!
//! * [`format`] — the `.mtrc` container: versioned header, varint +
//!   delta-encoded records, CRC32-framed blocks, streaming
//!   [`TraceWriter`]/[`TraceReader`] in O(block) memory;
//! * [`source`] — [`TraceSource`], a [`netcore::PacketSource`] that plays
//!   a trace back with the exact captured injection schedule;
//! * [`capture`] — [`CaptureSink`] for the runner's packet observer, and
//!   the `replay.*` metrics family ([`ReplayStats`]);
//! * [`transform`] — streaming time-scale / site-remap / filter / merge /
//!   truncate;
//! * [`corpus`] — the `traces/` directory index with per-trace
//!   provenance sidecars.
//!
//! # Why replay is exact
//!
//! The capture hook observes packets in the order the driver emits them,
//! and the driver always advances to `min(next source emission, next
//! network event)` — so packets are recorded at exactly their creation
//! instants, in non-decreasing time order. Replaying that stream through
//! [`TraceSource`] offers the driver the same emission instants, so the
//! same-network replay reproduces the original event sequence, stats and
//! metrics byte-for-byte.

pub mod capture;
pub mod corpus;
mod crc32;
pub mod format;
pub mod source;
pub mod transform;
mod varint;

pub use capture::{CaptureSink, ReplayStats};
pub use corpus::{sidecar_path, CorpusEntry, CorpusManifest, INDEX_NAME};
pub use crc32::crc32;
pub use format::{
    create_file, fnv1a64, open_file, validate, TraceError, TraceHeader, TraceMeta, TraceReader,
    TraceWriter, BLOCK_TARGET_BYTES, FNV_OFFSET, FORMAT_VERSION, MAGIC,
};
pub use source::TraceSource;
