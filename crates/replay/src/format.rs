//! The `.mtrc` binary traffic-trace format: versioned header, CRC32-framed
//! blocks of varint + delta-encoded packet records, streamed in O(block)
//! memory.
//!
//! # Layout
//!
//! ```text
//! header (fixed 46 bytes + description):
//!     0  magic          b"MTRC"
//!     4  version        u16 LE  (currently 1)
//!     6  flags          u16 LE  (reserved, 0)
//!     8  grid_side      u16 LE  (n of the n x n site grid)
//!    10  reserved       u16 LE  (0)
//!    12  seed           u64 LE  (RNG seed of the captured run)
//!    20  packet_count   u64 LE  (patched by `finish`)
//!    28  last_ps        u64 LE  (creation instant of the last packet)
//!    36  content_hash   u64 LE  (FNV-1a over all block payload bytes)
//!    44  desc_len       u16 LE
//!    46  description    UTF-8, desc_len bytes
//! blocks, repeated:
//!     payload_len  u32 LE  (0 terminates the trace)
//!     record_count u32 LE
//!     payload      encoded records
//!     crc32        u32 LE  (IEEE CRC-32 of payload)
//! ```
//!
//! Each record encodes one [`Packet`] at its injection point:
//! `uvarint Δcreated_ps, uvarint src, uvarint dst, uvarint bytes, u8 kind,
//! svarint Δid, uvarint op+1 (0 = none)`. Creation timestamps are
//! non-decreasing in capture order (the driver visits emissions in time
//! order), so the time delta is unsigned; packet ids are usually
//! sequential, so the ZigZag id delta is almost always the single byte 0.
//!
//! The writer buffers one block, stamps its CRC, and remembers a running
//! FNV-1a content hash; [`TraceWriter::finish`] writes the end marker and
//! seeks back to patch the three summary fields. Readers therefore know
//! the packet count, duration and content hash from the header alone, and
//! verify every block's CRC as they stream.

use crate::crc32::crc32;
use crate::varint::{get_svarint, get_uvarint, put_svarint, put_uvarint};
use desim::Time;
use netcore::{MessageKind, Packet, PacketId, SiteId};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic, the first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"MTRC";

/// Current format version.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed header length before the description string.
pub(crate) const HEADER_FIXED: usize = 46;

/// Byte offset of the `packet_count` field (start of the patched region).
const PATCH_OFFSET: u64 = 20;

/// Target payload size before a block is flushed (~64 KiB keeps replay
/// memory O(block) while amortizing framing overhead).
pub const BLOCK_TARGET_BYTES: usize = 64 * 1024;

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `MTRC` magic.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The header is truncated or self-inconsistent.
    BadHeader(String),
    /// A block failed its CRC or could not be decoded.
    CorruptBlock {
        /// Zero-based index of the offending block.
        block: usize,
        /// Human-readable diagnosis.
        reason: String,
    },
    /// Record stream violated an invariant (e.g. time went backwards).
    BadRecord(String),
    /// The trace body disagrees with its header summary fields.
    SummaryMismatch(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a .mtrc trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads v{FORMAT_VERSION})"
                )
            }
            TraceError::BadHeader(why) => write!(f, "malformed trace header: {why}"),
            TraceError::CorruptBlock { block, reason } => {
                write!(f, "corrupt trace block {block}: {reason}")
            }
            TraceError::BadRecord(why) => write!(f, "invalid trace record: {why}"),
            TraceError::SummaryMismatch(why) => {
                write!(f, "trace body disagrees with header: {why}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// 64-bit FNV-1a, the trace's content hash (over block payload bytes).
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis — the starting value for [`fnv1a64`] chains.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Descriptive metadata fixed at capture time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Side of the n×n site grid the trace addresses.
    pub grid_side: u16,
    /// RNG seed of the captured run (provenance; replay does not use it).
    pub seed: u64,
    /// Free-form one-line description (network, pattern, load, ...).
    pub description: String,
}

/// The decoded header of a trace, including the patched summary fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version the file was written with.
    pub version: u16,
    /// Capture-time metadata.
    pub meta: TraceMeta,
    /// Packets in the trace.
    pub packets: u64,
    /// Creation instant of the last packet, picoseconds.
    pub last_ps: u64,
    /// FNV-1a over all block payload bytes; the replay cache key.
    pub content_hash: u64,
}

impl TraceHeader {
    /// Creation instant of the last packet as a [`Time`].
    pub fn last_time(&self) -> Time {
        Time::from_ps(self.last_ps)
    }
}

fn kind_to_u8(kind: MessageKind) -> u8 {
    MessageKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind is one of MessageKind::ALL") as u8
}

fn kind_from_u8(v: u8) -> Option<MessageKind> {
    MessageKind::ALL.get(v as usize).copied()
}

/// Encodes one record into `payload`. `prev` carries (created_ps, id) of
/// the previous record.
fn encode_record(payload: &mut Vec<u8>, p: &Packet, prev: (u64, u64)) {
    let created = p.created.as_ps();
    put_uvarint(payload, created - prev.0);
    put_uvarint(payload, p.src.index() as u64);
    put_uvarint(payload, p.dst.index() as u64);
    put_uvarint(payload, u64::from(p.bytes));
    payload.push(kind_to_u8(p.kind));
    // Sequential ids (the overwhelmingly common case) encode as a zero
    // delta from prev_id + 1.
    put_svarint(payload, p.id.0 as i64 - (prev.1 as i64 + 1));
    put_uvarint(payload, p.op.map_or(0, |op| op + 1));
}

/// Decodes one record. Returns the packet and updates `prev`.
fn decode_record(
    payload: &[u8],
    pos: &mut usize,
    prev: &mut (u64, u64),
    sites: u64,
) -> Result<Packet, String> {
    let delta = get_uvarint(payload, pos).ok_or("truncated time delta")?;
    let created = prev
        .0
        .checked_add(delta)
        .ok_or("timestamp overflows u64 picoseconds")?;
    let src = get_uvarint(payload, pos).ok_or("truncated src")?;
    let dst = get_uvarint(payload, pos).ok_or("truncated dst")?;
    if src >= sites || dst >= sites {
        return Err(format!(
            "site id out of range (src {src}, dst {dst}, sites {sites})"
        ));
    }
    let bytes = get_uvarint(payload, pos).ok_or("truncated size")?;
    let bytes = u32::try_from(bytes).map_err(|_| "packet size exceeds u32".to_string())?;
    if bytes == 0 {
        return Err("zero-byte packet".to_string());
    }
    let kind = *payload.get(*pos).ok_or("truncated kind")?;
    *pos += 1;
    let kind = kind_from_u8(kind).ok_or_else(|| format!("unknown message kind {kind}"))?;
    let id_delta = get_svarint(payload, pos).ok_or("truncated id delta")?;
    let id = (prev.1 as i64 + 1 + id_delta) as u64;
    let op = get_uvarint(payload, pos).ok_or("truncated op")?;
    *prev = (created, id);
    let mut packet = Packet::new(
        PacketId(id),
        SiteId::from_index(src as usize),
        SiteId::from_index(dst as usize),
        bytes,
        kind,
        Time::from_ps(created),
    );
    if op > 0 {
        packet = packet.with_op(op - 1);
    }
    Ok(packet)
}

/// Streaming writer of `.mtrc` traces.
///
/// Records must arrive in non-decreasing creation-time order (capture
/// order satisfies this; transforms re-establish it). The writer needs a
/// seekable sink so [`finish`](Self::finish) can patch the summary fields
/// into the header.
///
/// # Example
///
/// ```
/// use replay::{TraceMeta, TraceWriter, TraceReader};
/// use netcore::{MessageKind, Packet, PacketId, SiteId};
/// use desim::Time;
/// use std::io::Cursor;
///
/// let meta = TraceMeta { grid_side: 8, seed: 7, description: "doc".into() };
/// let mut w = TraceWriter::create(Cursor::new(Vec::new()), &meta).unwrap();
/// w.record(&Packet::new(PacketId(0), SiteId::from_index(1), SiteId::from_index(2),
///                       64, MessageKind::Data, Time::from_ns(5))).unwrap();
/// let (sink, header) = w.finish().unwrap();
/// assert_eq!(header.packets, 1);
/// let mut r = TraceReader::new(Cursor::new(sink.into_inner())).unwrap();
/// let mut block = Vec::new();
/// assert_eq!(r.next_block(&mut block).unwrap(), 1);
/// assert_eq!(block[0].bytes, 64);
/// ```
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    meta: TraceMeta,
    payload: Vec<u8>,
    block_records: u32,
    prev: (u64, u64),
    packets: u64,
    last_ps: u64,
    content_hash: u64,
    started: bool,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a trace on `sink`, writing the header immediately.
    pub fn create(mut sink: W, meta: &TraceMeta) -> Result<TraceWriter<W>, TraceError> {
        if meta.grid_side == 0 {
            return Err(TraceError::BadHeader("grid side must be positive".into()));
        }
        let desc = meta.description.as_bytes();
        let desc_len = u16::try_from(desc.len())
            .map_err(|_| TraceError::BadHeader("description longer than 64 KiB".into()))?;
        let mut header = Vec::with_capacity(HEADER_FIXED + desc.len());
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes()); // flags
        header.extend_from_slice(&meta.grid_side.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes()); // reserved
        header.extend_from_slice(&meta.seed.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // packet_count (patched)
        header.extend_from_slice(&0u64.to_le_bytes()); // last_ps (patched)
        header.extend_from_slice(&0u64.to_le_bytes()); // content_hash (patched)
        header.extend_from_slice(&desc_len.to_le_bytes());
        header.extend_from_slice(desc);
        debug_assert_eq!(header.len(), HEADER_FIXED + desc.len());
        sink.write_all(&header)?;
        Ok(TraceWriter {
            sink,
            meta: meta.clone(),
            payload: Vec::with_capacity(BLOCK_TARGET_BYTES + 64),
            block_records: 0,
            prev: (0, 0),
            packets: 0,
            last_ps: 0,
            content_hash: FNV_OFFSET,
            started: false,
        })
    }

    /// The metadata this trace was created with.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Packets recorded so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Appends one packet record.
    ///
    /// Fails if `packet.created` precedes the previous record (capture
    /// order is time order; transforms must re-sort before writing) or
    /// addresses a site outside the trace's grid.
    pub fn record(&mut self, packet: &Packet) -> Result<(), TraceError> {
        let created = packet.created.as_ps();
        if self.started && created < self.prev.0 {
            return Err(TraceError::BadRecord(format!(
                "creation time went backwards ({} ps after {} ps)",
                created, self.prev.0
            )));
        }
        let sites = u64::from(self.meta.grid_side) * u64::from(self.meta.grid_side);
        if packet.src.index() as u64 >= sites || packet.dst.index() as u64 >= sites {
            return Err(TraceError::BadRecord(format!(
                "packet {} addresses a site outside the {}x{} grid",
                packet.id, self.meta.grid_side, self.meta.grid_side
            )));
        }
        encode_record(&mut self.payload, packet, self.prev);
        self.prev = (created, packet.id.0);
        self.block_records += 1;
        self.packets += 1;
        self.last_ps = created;
        self.started = true;
        if self.payload.len() >= BLOCK_TARGET_BYTES {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), TraceError> {
        if self.block_records == 0 {
            return Ok(());
        }
        let len = u32::try_from(self.payload.len())
            .map_err(|_| TraceError::BadRecord("block payload exceeds u32 bytes".into()))?;
        self.sink.write_all(&len.to_le_bytes())?;
        self.sink.write_all(&self.block_records.to_le_bytes())?;
        self.sink.write_all(&self.payload)?;
        self.sink.write_all(&crc32(&self.payload).to_le_bytes())?;
        self.content_hash = fnv1a64(self.content_hash, &self.payload);
        self.payload.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Flushes the tail block, writes the end marker, patches the header
    /// summary and returns the sink plus the final header.
    pub fn finish(mut self) -> Result<(W, TraceHeader), TraceError> {
        self.flush_block()?;
        // End marker: empty payload, zero records, CRC of nothing.
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.seek(SeekFrom::Start(PATCH_OFFSET))?;
        self.sink.write_all(&self.packets.to_le_bytes())?;
        self.sink.write_all(&self.last_ps.to_le_bytes())?;
        self.sink.write_all(&self.content_hash.to_le_bytes())?;
        self.sink.seek(SeekFrom::End(0))?;
        self.sink.flush()?;
        let header = TraceHeader {
            version: FORMAT_VERSION,
            meta: self.meta,
            packets: self.packets,
            last_ps: self.last_ps,
            content_hash: self.content_hash,
        };
        Ok((self.sink, header))
    }
}

/// Opens a trace writer on a new file at `path` (truncating any previous
/// content).
pub fn create_file(
    path: impl AsRef<Path>,
    meta: &TraceMeta,
) -> Result<TraceWriter<BufWriter<File>>, TraceError> {
    let file = File::create(path)?;
    TraceWriter::create(BufWriter::new(file), meta)
}

fn read_exact_array<const N: usize, R: Read>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Streaming reader of `.mtrc` traces: O(block) memory, CRC-checked.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    header: TraceHeader,
    prev: (u64, u64),
    blocks_read: usize,
    packets_read: u64,
    running_hash: u64,
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, decoding and sanity-checking its header.
    pub fn new(mut source: R) -> Result<TraceReader<R>, TraceError> {
        let magic: [u8; 4] = read_exact_array(&mut source)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes(read_exact_array(&mut source)?);
        if version == 0 || version > FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let _flags = u16::from_le_bytes(read_exact_array::<2, _>(&mut source)?);
        let grid_side = u16::from_le_bytes(read_exact_array(&mut source)?);
        if grid_side == 0 {
            return Err(TraceError::BadHeader("zero grid side".into()));
        }
        let _reserved = u16::from_le_bytes(read_exact_array::<2, _>(&mut source)?);
        let seed = u64::from_le_bytes(read_exact_array(&mut source)?);
        let packets = u64::from_le_bytes(read_exact_array(&mut source)?);
        let last_ps = u64::from_le_bytes(read_exact_array(&mut source)?);
        let content_hash = u64::from_le_bytes(read_exact_array(&mut source)?);
        let desc_len = u16::from_le_bytes(read_exact_array(&mut source)?);
        let mut desc = vec![0u8; desc_len as usize];
        source.read_exact(&mut desc)?;
        let description = String::from_utf8(desc)
            .map_err(|_| TraceError::BadHeader("description is not UTF-8".into()))?;
        Ok(TraceReader {
            source,
            header: TraceHeader {
                version,
                meta: TraceMeta {
                    grid_side,
                    seed,
                    description,
                },
                packets,
                last_ps,
                content_hash,
            },
            prev: (0, 0),
            blocks_read: 0,
            packets_read: 0,
            running_hash: FNV_OFFSET,
            finished: false,
        })
    }

    /// The decoded header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Packets decoded so far.
    pub fn packets_read(&self) -> u64 {
        self.packets_read
    }

    /// Reads and decodes the next block into `out` (cleared first),
    /// verifying its CRC. Returns the number of packets appended; `0`
    /// means the end of the trace was reached cleanly.
    pub fn next_block(&mut self, out: &mut Vec<Packet>) -> Result<usize, TraceError> {
        out.clear();
        if self.finished {
            return Ok(0);
        }
        let block = self.blocks_read;
        let fail = |reason: String| TraceError::CorruptBlock { block, reason };
        let payload_len = u32::from_le_bytes(
            read_exact_array(&mut self.source)
                .map_err(|e| fail(format!("truncated frame: {e}")))?,
        );
        let record_count = u32::from_le_bytes(
            read_exact_array(&mut self.source)
                .map_err(|e| fail(format!("truncated frame: {e}")))?,
        );
        if payload_len == 0 {
            // End marker; validate its (empty) CRC and the header summary.
            let crc = u32::from_le_bytes(
                read_exact_array(&mut self.source)
                    .map_err(|e| fail(format!("truncated end marker: {e}")))?,
            );
            if record_count != 0 || crc != 0 {
                return Err(fail("malformed end marker".into()));
            }
            self.finished = true;
            if self.packets_read != self.header.packets {
                return Err(TraceError::SummaryMismatch(format!(
                    "header promises {} packets, body holds {}",
                    self.header.packets, self.packets_read
                )));
            }
            if self.running_hash != self.header.content_hash {
                return Err(TraceError::SummaryMismatch(format!(
                    "content hash {:016x} != header {:016x}",
                    self.running_hash, self.header.content_hash
                )));
            }
            if self.packets_read > 0 && self.prev.0 != self.header.last_ps {
                return Err(TraceError::SummaryMismatch(format!(
                    "last timestamp {} ps != header {} ps",
                    self.prev.0, self.header.last_ps
                )));
            }
            return Ok(0);
        }
        if record_count == 0 {
            return Err(fail("non-empty block with zero records".into()));
        }
        let mut payload = vec![0u8; payload_len as usize];
        self.source
            .read_exact(&mut payload)
            .map_err(|e| fail(format!("truncated payload: {e}")))?;
        let stored_crc = u32::from_le_bytes(
            read_exact_array(&mut self.source)
                .map_err(|e| fail(format!("truncated checksum: {e}")))?,
        );
        let actual_crc = crc32(&payload);
        if stored_crc != actual_crc {
            return Err(fail(format!(
                "CRC mismatch (stored {stored_crc:08x}, computed {actual_crc:08x})"
            )));
        }
        self.running_hash = fnv1a64(self.running_hash, &payload);
        let sites = u64::from(self.header.meta.grid_side) * u64::from(self.header.meta.grid_side);
        let mut pos = 0usize;
        out.reserve(record_count as usize);
        for _ in 0..record_count {
            let before = self.prev.0;
            let packet = decode_record(&payload, &mut pos, &mut self.prev, sites).map_err(&fail)?;
            debug_assert!(self.prev.0 >= before, "decoder moved time backwards");
            out.push(packet);
        }
        if pos != payload.len() {
            return Err(fail(format!(
                "{} trailing bytes after {} records",
                payload.len() - pos,
                record_count
            )));
        }
        self.blocks_read += 1;
        self.packets_read += record_count as u64;
        Ok(record_count as usize)
    }
}

/// Opens a buffered trace reader on `path`.
pub fn open_file(path: impl AsRef<Path>) -> Result<TraceReader<BufReader<File>>, TraceError> {
    let file = File::open(path)?;
    TraceReader::new(BufReader::new(file))
}

/// Streams through the whole trace at `path`, verifying every block CRC,
/// the record encoding and the header summary. Returns the header on
/// success. Memory stays O(block) regardless of trace size.
pub fn validate(path: impl AsRef<Path>) -> Result<TraceHeader, TraceError> {
    let mut reader = open_file(path)?;
    let mut block = Vec::new();
    while reader.next_block(&mut block)? > 0 {}
    Ok(reader.header().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn meta() -> TraceMeta {
        TraceMeta {
            grid_side: 8,
            seed: 42,
            description: "unit test".into(),
        }
    }

    fn packet(id: u64, src: usize, dst: usize, ps: u64) -> Packet {
        Packet::new(
            PacketId(id),
            SiteId::from_index(src),
            SiteId::from_index(dst),
            64,
            MessageKind::Data,
            Time::from_ps(ps),
        )
    }

    fn write_trace(packets: &[Packet]) -> (Vec<u8>, TraceHeader) {
        let mut w = TraceWriter::create(Cursor::new(Vec::new()), &meta()).expect("create");
        for p in packets {
            w.record(p).expect("record");
        }
        let (sink, header) = w.finish().expect("finish");
        (sink.into_inner(), header)
    }

    fn read_all(bytes: &[u8]) -> (Vec<Packet>, TraceHeader) {
        let mut r = TraceReader::new(Cursor::new(bytes.to_vec())).expect("open");
        let mut all = Vec::new();
        let mut block = Vec::new();
        while r.next_block(&mut block).expect("block") > 0 {
            all.extend(block.iter().copied());
        }
        (all, r.header().clone())
    }

    #[test]
    fn round_trips_packets_exactly() {
        let original = vec![
            packet(0, 1, 2, 100),
            packet(1, 3, 4, 100),
            packet(2, 5, 6, 250).with_op(17),
            packet(3, 0, 63, 9_999),
        ];
        let (bytes, header) = write_trace(&original);
        assert_eq!(header.packets, 4);
        assert_eq!(header.last_ps, 9_999);
        let (back, rheader) = read_all(&bytes);
        assert_eq!(rheader, header);
        assert_eq!(back.len(), 4);
        for (a, b) in original.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.created, b.created);
            assert_eq!(a.op, b.op);
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let (bytes, header) = write_trace(&[]);
        assert_eq!(header.packets, 0);
        let (back, _) = read_all(&bytes);
        assert!(back.is_empty());
    }

    #[test]
    fn many_blocks_stream_cleanly() {
        // Enough records to cross several block boundaries.
        let n = 40_000u64;
        let packets: Vec<Packet> = (0..n)
            .map(|i| packet(i, (i % 64) as usize, ((i + 1) % 64) as usize, i * 7))
            .collect();
        let (bytes, header) = write_trace(&packets);
        assert_eq!(header.packets, n);
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("open");
        let mut total = 0usize;
        let mut blocks = 0usize;
        let mut block = Vec::new();
        loop {
            let got = r.next_block(&mut block).expect("block");
            if got == 0 {
                break;
            }
            total += got;
            blocks += 1;
        }
        assert_eq!(total as u64, n);
        assert!(blocks > 1, "expected multiple blocks, got {blocks}");
    }

    #[test]
    fn non_monotonic_times_are_rejected_at_write() {
        let mut w = TraceWriter::create(Cursor::new(Vec::new()), &meta()).expect("create");
        w.record(&packet(0, 1, 2, 500)).expect("first");
        let err = w.record(&packet(1, 1, 2, 400)).expect_err("backwards");
        assert!(err.to_string().contains("backwards"), "{err}");
    }

    #[test]
    fn out_of_grid_sites_are_rejected_at_write() {
        let mut w = TraceWriter::create(Cursor::new(Vec::new()), &meta()).expect("create");
        let err = w.record(&packet(0, 64, 2, 0)).expect_err("site 64 on 8x8");
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn corrupted_crc_is_a_clean_error() {
        let packets: Vec<Packet> = (0..100).map(|i| packet(i, 1, 2, i * 10)).collect();
        let (mut bytes, _) = write_trace(&packets);
        // Flip one payload byte somewhere after the header.
        let target = HEADER_FIXED + "unit test".len() + 20;
        bytes[target] ^= 0x40;
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("header still fine");
        let mut block = Vec::new();
        let err = loop {
            match r.next_block(&mut block) {
                Ok(0) => panic!("corruption not detected"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        let msg = err.to_string();
        assert!(msg.contains("corrupt trace block"), "{msg}");
        assert!(msg.contains("CRC mismatch"), "{msg}");
    }

    #[test]
    fn truncated_trace_is_a_clean_error() {
        let packets: Vec<Packet> = (0..100).map(|i| packet(i, 1, 2, i * 10)).collect();
        let (bytes, _) = write_trace(&packets);
        let cut = &bytes[..bytes.len() - 7];
        let mut r = TraceReader::new(Cursor::new(cut.to_vec())).expect("header fine");
        let mut block = Vec::new();
        let mut saw_error = false;
        loop {
            match r.next_block(&mut block) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => {
                    saw_error = true;
                    assert!(matches!(
                        e,
                        TraceError::CorruptBlock { .. } | TraceError::Io(_)
                    ));
                    break;
                }
            }
        }
        assert!(saw_error, "truncation slipped through");
    }

    #[test]
    fn tampered_header_count_is_detected() {
        let packets: Vec<Packet> = (0..10).map(|i| packet(i, 1, 2, i * 10)).collect();
        let (mut bytes, _) = write_trace(&packets);
        bytes[PATCH_OFFSET as usize] ^= 0x01; // packet_count
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("header fine");
        let mut block = Vec::new();
        let err = loop {
            match r.next_block(&mut block) {
                Ok(0) => panic!("mismatch not detected"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceError::SummaryMismatch(_)), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::new(Cursor::new(b"NOPE".to_vec())).expect_err("magic");
        assert!(matches!(err, TraceError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let (mut bytes, _) = write_trace(&[]);
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        let err = TraceReader::new(Cursor::new(bytes)).expect_err("version");
        assert!(matches!(err, TraceError::UnsupportedVersion(_)));
    }

    #[test]
    fn encoding_is_compact_for_dense_streams() {
        // Sequential ids, small deltas: a record should average well under
        // ten bytes against the 40+ bytes of a naive fixed layout.
        let packets: Vec<Packet> = (0..10_000).map(|i| packet(i, 1, 2, i * 13)).collect();
        let (bytes, _) = write_trace(&packets);
        let per_record = bytes.len() as f64 / 10_000.0;
        assert!(per_record < 10.0, "{per_record} bytes/record");
    }
}
