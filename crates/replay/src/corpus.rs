//! The trace corpus: a directory of `.mtrc` files plus an index manifest
//! with per-trace provenance.
//!
//! Capture writes each trace next to a `<trace>.manifest.json` sidecar
//! holding the `RunManifest` JSON of the run that produced it. The corpus
//! index (`MANIFEST.json`) is never parsed back — it is *regenerated* by
//! scanning the trace headers and sidecars, so a hand-edited or stale
//! index can't poison anything.

use crate::format::{TraceError, TraceHeader};
use netcore::metrics::json_escape;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Name of the corpus index file inside a trace directory.
pub const INDEX_NAME: &str = "MANIFEST.json";

/// One trace in the corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Trace file name (relative to the corpus directory).
    pub file: String,
    /// Decoded trace header.
    pub header: TraceHeader,
    /// Size of the trace file in bytes.
    pub size_bytes: u64,
    /// Raw `RunManifest` JSON from the provenance sidecar, if present and
    /// shaped like a JSON object.
    pub provenance: Option<String>,
}

/// The scanned corpus of one `traces/` directory.
#[derive(Debug, Clone, Default)]
pub struct CorpusManifest {
    /// Entries sorted by file name (deterministic index output).
    pub entries: Vec<CorpusEntry>,
}

/// Sidecar path for a trace: `foo.mtrc` → `foo.mtrc.manifest.json`.
pub fn sidecar_path(trace: &Path) -> PathBuf {
    let mut name = trace.as_os_str().to_os_string();
    name.push(".manifest.json");
    PathBuf::from(name)
}

impl CorpusManifest {
    /// Scans `dir` for `.mtrc` traces, decoding each header (headers only
    /// — no full-body validation, so scanning a large corpus is cheap)
    /// and picking up provenance sidecars.
    pub fn scan(dir: impl AsRef<Path>) -> Result<CorpusManifest, TraceError> {
        let dir = dir.as_ref();
        let mut files: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "mtrc") {
                files.push(path);
            }
        }
        files.sort();
        let mut entries = Vec::with_capacity(files.len());
        for path in files {
            let reader = crate::format::open_file(&path)?;
            let header = reader.header().clone();
            let size_bytes = fs::metadata(&path)?.len();
            let provenance = fs::read_to_string(sidecar_path(&path))
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|s| s.starts_with('{') && s.ends_with('}'));
            let file = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            entries.push(CorpusEntry {
                file,
                header,
                size_bytes,
                provenance,
            });
        }
        Ok(CorpusManifest { entries })
    }

    /// Renders the index as a JSON array of trace descriptors.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  {{");
            let _ = write!(out, "\n    \"file\": \"{}\",", json_escape(&e.file));
            let _ = write!(
                out,
                "\n    \"description\": \"{}\",",
                json_escape(&e.header.meta.description)
            );
            let _ = write!(out, "\n    \"version\": {},", e.header.version);
            let _ = write!(out, "\n    \"grid_side\": {},", e.header.meta.grid_side);
            let _ = write!(out, "\n    \"seed\": {},", e.header.meta.seed);
            let _ = write!(out, "\n    \"packets\": {},", e.header.packets);
            let _ = write!(
                out,
                "\n    \"duration_ns\": {},",
                e.header.last_ps as f64 / 1_000.0
            );
            let _ = write!(
                out,
                "\n    \"content_hash\": \"{:016x}\",",
                e.header.content_hash
            );
            let _ = write!(out, "\n    \"size_bytes\": {},", e.size_bytes);
            match &e.provenance {
                // The sidecar is JSON we wrote ourselves; embed verbatim,
                // indented to keep the index readable.
                Some(p) => {
                    let indented = p.replace('\n', "\n    ");
                    let _ = write!(out, "\n    \"provenance\": {indented}");
                }
                None => {
                    let _ = write!(out, "\n    \"provenance\": null");
                }
            }
            out.push_str("\n  }");
        }
        out.push_str("\n]");
        out
    }

    /// Writes (or rewrites) the corpus index in `dir`.
    pub fn write_index(&self, dir: impl AsRef<Path>) -> Result<PathBuf, TraceError> {
        let path = dir.as_ref().join(INDEX_NAME);
        fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TraceMeta, TraceWriter};
    use desim::trace::validate_json;
    use desim::Time;
    use netcore::{MessageKind, Packet, PacketId, SiteId};
    use std::fs::File;
    use std::io::BufWriter;

    fn write_trace(path: &Path, description: &str, n: u64) {
        let meta = TraceMeta {
            grid_side: 8,
            seed: 3,
            description: description.into(),
        };
        let file = BufWriter::new(File::create(path).expect("create"));
        let mut w = TraceWriter::create(file, &meta).expect("writer");
        for i in 0..n {
            w.record(&Packet::new(
                PacketId(i),
                SiteId::from_index(0),
                SiteId::from_index(1),
                64,
                MessageKind::Data,
                Time::from_ps(i * 100),
            ))
            .expect("record");
        }
        w.finish().expect("finish");
    }

    #[test]
    fn scan_builds_a_sorted_valid_index() {
        let dir = std::env::temp_dir().join(format!("mtrc-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        write_trace(&dir.join("b.mtrc"), "second", 5);
        write_trace(&dir.join("a.mtrc"), "first", 3);
        fs::write(
            sidecar_path(&dir.join("a.mtrc")),
            "{\n  \"command\": \"capture\"\n}\n",
        )
        .expect("sidecar");
        fs::write(dir.join("ignored.txt"), "not a trace").expect("noise");

        let corpus = CorpusManifest::scan(&dir).expect("scan");
        assert_eq!(corpus.entries.len(), 2);
        assert_eq!(corpus.entries[0].file, "a.mtrc");
        assert_eq!(corpus.entries[0].header.packets, 3);
        assert!(corpus.entries[0].provenance.is_some());
        assert!(corpus.entries[1].provenance.is_none());

        let json = corpus.to_json();
        validate_json(&json).expect("index JSON well-formed");
        assert!(json.contains("\"command\": \"capture\""), "{json}");

        let index = corpus.write_index(&dir).expect("write");
        assert!(index.ends_with(INDEX_NAME));
        assert!(fs::read_to_string(index).expect("read").contains("a.mtrc"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_naming() {
        assert_eq!(
            sidecar_path(Path::new("traces/foo.mtrc")),
            PathBuf::from("traces/foo.mtrc.manifest.json")
        );
    }
}
