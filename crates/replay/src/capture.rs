//! Capture-side plumbing: an error-latching sink the runner's packet
//! observer can feed, plus the `replay.*` metrics family shared by
//! capture and replay runs.

use crate::format::{TraceError, TraceHeader, TraceMeta, TraceWriter};
use netcore::{MetricsRegistry, Packet};
use std::fs::File;
use std::io::{BufWriter, Seek, Write};
use std::path::Path;

/// Latches trace-write errors so the capture observer can stay an
/// infallible `FnMut(&Packet)` inside the hot simulation loop.
///
/// The driver's observer callback has no error channel; a `CaptureSink`
/// remembers the first failure, swallows the rest, and surfaces the error
/// when [`finish`](Self::finish) is called after the run.
pub struct CaptureSink<W: Write + Seek> {
    writer: Option<TraceWriter<W>>,
    error: Option<TraceError>,
}

impl CaptureSink<BufWriter<File>> {
    /// Starts capturing to a new trace file at `path`.
    pub fn create_file(path: impl AsRef<Path>, meta: &TraceMeta) -> Result<Self, TraceError> {
        Ok(CaptureSink {
            writer: Some(crate::format::create_file(path, meta)?),
            error: None,
        })
    }
}

impl<W: Write + Seek> CaptureSink<W> {
    /// Wraps an already-started writer.
    pub fn new(writer: TraceWriter<W>) -> CaptureSink<W> {
        CaptureSink {
            writer: Some(writer),
            error: None,
        }
    }

    /// Records one injected packet; never panics, never fails. The first
    /// underlying error is latched and stops further writing.
    pub fn record(&mut self, packet: &Packet) {
        if self.error.is_some() {
            return;
        }
        if let Some(writer) = self.writer.as_mut() {
            if let Err(e) = writer.record(packet) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }

    /// Packets captured so far.
    pub fn packets(&self) -> u64 {
        self.writer.as_ref().map_or(0, |w| w.packets())
    }

    /// Finalizes the trace, returning the latched error if any write
    /// failed mid-run.
    pub fn finish(self) -> Result<TraceHeader, TraceError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let writer = self.writer.expect("no error implies live writer");
        let (_, header) = writer.finish()?;
        Ok(header)
    }
}

/// Statistics of one replay (or capture) pass, recorded under the
/// `replay.*` metrics family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Packets in the source trace.
    pub trace_packets: u64,
    /// Packets the driver actually injected.
    pub emitted: u64,
    /// Packets the network delivered back to the source.
    pub delivered: u64,
    /// Creation instant of the last trace packet, picoseconds.
    pub trace_last_ps: u64,
    /// FNV-1a content hash of the trace body.
    pub content_hash: u64,
    /// True when replay stopped early on a corrupt block.
    pub poisoned: bool,
}

impl ReplayStats {
    /// Derives the trace-side fields from a header.
    pub fn from_header(header: &TraceHeader) -> ReplayStats {
        ReplayStats {
            trace_packets: header.packets,
            trace_last_ps: header.last_ps,
            content_hash: header.content_hash,
            ..ReplayStats::default()
        }
    }

    /// Flattens into `reg` under the standard `replay.*` names.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.add_counter("replay.trace_packets", self.trace_packets);
        reg.add_counter("replay.emitted", self.emitted);
        reg.add_counter("replay.delivered", self.delivered);
        reg.add_counter("replay.poisoned", u64::from(self.poisoned));
        reg.set_gauge(
            "replay.trace_duration_ns",
            self.trace_last_ps as f64 / 1_000.0,
        );
        reg.set_gauge(
            "replay.coverage",
            if self.trace_packets == 0 {
                1.0
            } else {
                self.emitted as f64 / self.trace_packets as f64
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TraceReader, TraceWriter};
    use desim::Time;
    use netcore::{MessageKind, PacketId, SiteId};
    use std::io::Cursor;

    fn meta() -> TraceMeta {
        TraceMeta {
            grid_side: 8,
            seed: 9,
            description: "capture test".into(),
        }
    }

    fn packet(id: u64, ps: u64) -> Packet {
        Packet::new(
            PacketId(id),
            SiteId::from_index(0),
            SiteId::from_index(1),
            64,
            MessageKind::Data,
            Time::from_ps(ps),
        )
    }

    #[test]
    fn sink_records_and_finishes() {
        let writer = TraceWriter::create(Cursor::new(Vec::new()), &meta()).expect("create");
        let mut sink = CaptureSink::new(writer);
        for i in 0..10 {
            sink.record(&packet(i, i * 5));
        }
        assert_eq!(sink.packets(), 10);
        let header = sink.finish().expect("finish");
        assert_eq!(header.packets, 10);
        assert_eq!(header.last_ps, 45);
    }

    #[test]
    fn sink_latches_the_first_error() {
        let writer = TraceWriter::create(Cursor::new(Vec::new()), &meta()).expect("create");
        let mut sink = CaptureSink::new(writer);
        sink.record(&packet(0, 100));
        sink.record(&packet(1, 50)); // time goes backwards: latched
        sink.record(&packet(2, 200)); // silently dropped after the latch
        assert_eq!(sink.packets(), 0, "writer discarded after error");
        let err = sink.finish().expect_err("latched error surfaces");
        assert!(err.to_string().contains("backwards"), "{err}");
    }

    #[test]
    fn replay_stats_metrics_family() {
        let writer = TraceWriter::create(Cursor::new(Vec::new()), &meta()).expect("create");
        let mut sink = CaptureSink::new(writer);
        sink.record(&packet(0, 1_000));
        let header = sink.finish().expect("finish");
        // Round-trip through a reader to pick the header up again.
        let mut stats = ReplayStats::from_header(&header);
        stats.emitted = 1;
        stats.delivered = 1;
        let mut reg = MetricsRegistry::new();
        stats.record_metrics(&mut reg);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"replay.trace_packets\": 1"), "{json}");
        assert!(json.contains("\"replay.emitted\": 1"), "{json}");
        assert!(json.contains("\"replay.poisoned\": 0"), "{json}");
        assert!(json.contains("replay.coverage"), "{json}");

        // And the header fields survive a real read-back.
        let writer = TraceWriter::create(Cursor::new(Vec::new()), &meta()).expect("create");
        let (sink2, h2) = {
            let mut s = CaptureSink::new(writer);
            s.record(&packet(0, 1_000));
            let h = s.finish().expect("finish");
            (h.content_hash, h)
        };
        assert_eq!(sink2, header.content_hash);
        assert_eq!(h2.last_ps, 1_000);
        let _ = TraceReader::new(Cursor::new(Vec::new())).is_err();
    }
}
