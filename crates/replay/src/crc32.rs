//! CRC-32 (IEEE 802.3 polynomial), the per-block integrity check of the
//! `.mtrc` format.
//!
//! Table-driven, one 256-entry table built at first use. The digest of the
//! empty message is 0, which doubles as the checksum of the end-of-trace
//! marker block.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let clean = b"macrochip trace block payload".to_vec();
        let base = crc32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
