//! LEB128 variable-length integers, the space saver behind `.mtrc`
//! records.
//!
//! Unsigned values use plain LEB128 (7 payload bits per byte, MSB as the
//! continuation flag); signed deltas go through ZigZag first so small
//! negative values stay short. Timestamps are delta-encoded by the trace
//! writer, so the common case — a few hundred picoseconds between
//! packets — fits in one or two bytes instead of eight.

/// Appends `value` to `out` as unsigned LEB128.
pub fn put_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` to `out` as ZigZag-mapped LEB128.
pub fn put_svarint(out: &mut Vec<u8>, value: i64) {
    put_uvarint(out, zigzag(value));
}

/// Maps a signed value onto the unsigned line: 0, -1, 1, -2, 2, ...
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Reads an unsigned LEB128 value from `buf` starting at `*pos`,
/// advancing `*pos` past it. Returns `None` on truncation or a value
/// wider than 64 bits.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow 64 bits
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Reads a ZigZag-mapped LEB128 value. See [`get_uvarint`].
pub fn get_svarint(buf: &[u8], pos: &mut usize) -> Option<i64> {
    get_uvarint(buf, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn svarint_round_trips_signed_values() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_svarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_svarint(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn small_values_are_single_bytes() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_svarint(&mut buf, -2);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let buf = [0x80u8, 0x80]; // continuation bits with no terminator
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn overwide_input_is_rejected() {
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_is_a_bijection_on_samples() {
        for v in [-3i64, -2, -1, 0, 1, 2, 3, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
