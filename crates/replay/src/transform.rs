//! Streaming trace transforms: time-scale, site-remap, filter, merge and
//! truncate.
//!
//! Every transform reads blocks from one (or several) [`TraceReader`]s and
//! writes a fresh trace through a [`TraceWriter`], so memory stays
//! O(block) no matter the trace size. Transforms preserve the capture
//! invariant — records sorted by creation time — either trivially
//! (filter/truncate take monotone subsequences, remap leaves times alone,
//! scaling is monotone) or by construction (merge is a k-way time merge).

use crate::format::{TraceError, TraceHeader, TraceMeta, TraceReader, TraceWriter};
use desim::Time;
use netcore::{Packet, PacketId, SiteId};
use std::io::{Read, Seek, Write};

/// Scales every creation timestamp by the rational factor `num / den`.
///
/// A rational factor keeps the transform exactly deterministic across
/// platforms (no float rounding): each timestamp becomes
/// `t * num / den` in 128-bit arithmetic, truncated to picoseconds.
/// `num > den` stretches the trace (lower offered load), `num < den`
/// compresses it (higher load).
pub fn time_scale<R: Read, W: Write + Seek>(
    mut input: TraceReader<R>,
    output: W,
    num: u64,
    den: u64,
) -> Result<TraceHeader, TraceError> {
    if num == 0 || den == 0 {
        return Err(TraceError::BadRecord(
            "time-scale factor must have positive numerator and denominator".into(),
        ));
    }
    let meta = scaled_meta(input.header(), &format!("time-scale {num}/{den}"));
    let mut out = TraceWriter::create(output, &meta)?;
    let mut block = Vec::new();
    while input.next_block(&mut block)? > 0 {
        for p in &block {
            let ps = u128::from(p.created.as_ps()) * u128::from(num) / u128::from(den);
            let ps = u64::try_from(ps).map_err(|_| {
                TraceError::BadRecord("scaled timestamp overflows u64 picoseconds".into())
            })?;
            let mut q = *p;
            q.created = Time::from_ps(ps);
            out.record(&q)?;
        }
    }
    Ok(out.finish()?.1)
}

/// Rewrites site indices through `map` (index → new index).
///
/// `map` must cover every site of the trace's grid and stay within it;
/// it need not be a permutation (collapsing sites is allowed, e.g. to
/// fold a hot-spot onto one victim).
pub fn site_remap<R: Read, W: Write + Seek>(
    mut input: TraceReader<R>,
    output: W,
    map: &[u16],
) -> Result<TraceHeader, TraceError> {
    let side = input.header().meta.grid_side;
    let sites = usize::from(side) * usize::from(side);
    if map.len() != sites {
        return Err(TraceError::BadRecord(format!(
            "site map has {} entries, grid has {} sites",
            map.len(),
            sites
        )));
    }
    if let Some(bad) = map.iter().find(|&&m| usize::from(m) >= sites) {
        return Err(TraceError::BadRecord(format!(
            "site map target {bad} outside the {side}x{side} grid"
        )));
    }
    let meta = scaled_meta(input.header(), "site-remap");
    let mut out = TraceWriter::create(output, &meta)?;
    let mut block = Vec::new();
    while input.next_block(&mut block)? > 0 {
        for p in &block {
            let mut q = *p;
            q.src = SiteId::from_index(usize::from(map[p.src.index()]));
            q.dst = SiteId::from_index(usize::from(map[p.dst.index()]));
            out.record(&q)?;
        }
    }
    Ok(out.finish()?.1)
}

/// Keeps only packets matching `keep`.
pub fn filter<R: Read, W: Write + Seek, F: FnMut(&Packet) -> bool>(
    mut input: TraceReader<R>,
    output: W,
    mut keep: F,
    label: &str,
) -> Result<TraceHeader, TraceError> {
    let meta = scaled_meta(input.header(), &format!("filter {label}"));
    let mut out = TraceWriter::create(output, &meta)?;
    let mut block = Vec::new();
    while input.next_block(&mut block)? > 0 {
        for p in &block {
            if keep(p) {
                out.record(p)?;
            }
        }
    }
    Ok(out.finish()?.1)
}

/// Stops after `max_packets` records or the first record created after
/// `max_time`, whichever comes first.
pub fn truncate<R: Read, W: Write + Seek>(
    mut input: TraceReader<R>,
    output: W,
    max_packets: u64,
    max_time: Option<Time>,
) -> Result<TraceHeader, TraceError> {
    let meta = scaled_meta(input.header(), "truncate");
    let mut out = TraceWriter::create(output, &meta)?;
    let mut block = Vec::new();
    'outer: while input.next_block(&mut block)? > 0 {
        for p in &block {
            if out.packets() >= max_packets {
                break 'outer;
            }
            if max_time.is_some_and(|t| p.created > t) {
                break 'outer;
            }
            out.record(p)?;
        }
    }
    Ok(out.finish()?.1)
}

/// K-way merges several traces into one time-ordered stream.
///
/// All inputs must share a grid side. Packets are renumbered sequentially
/// in merged order so ids stay unique across source traces; ties on the
/// creation instant resolve in input order (first trace wins), keeping
/// the merge fully deterministic.
pub fn merge<R: Read, W: Write + Seek>(
    inputs: Vec<TraceReader<R>>,
    output: W,
) -> Result<TraceHeader, TraceError> {
    let Some(first) = inputs.first() else {
        return Err(TraceError::BadRecord(
            "merge needs at least one input".into(),
        ));
    };
    let side = first.header().meta.grid_side;
    if let Some(other) = inputs.iter().find(|r| r.header().meta.grid_side != side) {
        return Err(TraceError::BadRecord(format!(
            "cannot merge traces of different grids ({side} vs {})",
            other.header().meta.grid_side
        )));
    }
    let meta = TraceMeta {
        grid_side: side,
        seed: first.header().meta.seed,
        description: format!("merge of {} traces", inputs.len()),
    };
    let mut out = TraceWriter::create(output, &meta)?;

    // One cursor per input: the current block and an index into it.
    struct Cursor<R: Read> {
        reader: TraceReader<R>,
        block: Vec<Packet>,
        pos: usize,
        done: bool,
    }
    let mut cursors: Vec<Cursor<R>> = inputs
        .into_iter()
        .map(|reader| Cursor {
            reader,
            block: Vec::new(),
            pos: 0,
            done: false,
        })
        .collect();
    for c in &mut cursors {
        advance(c)?;
    }

    fn advance<R: Read>(c: &mut Cursor<R>) -> Result<(), TraceError> {
        while !c.done && c.pos >= c.block.len() {
            c.pos = 0;
            if c.reader.next_block(&mut c.block)? == 0 {
                c.done = true;
                c.block.clear();
            }
        }
        Ok(())
    }

    let mut next_id = 0u64;
    loop {
        // Pick the earliest front across cursors; ties go to the lowest
        // input index.
        let mut best: Option<(usize, Time)> = None;
        for (i, c) in cursors.iter().enumerate() {
            if let Some(p) = c.block.get(c.pos) {
                if best.is_none_or(|(_, t)| p.created < t) {
                    best = Some((i, p.created));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let mut p = cursors[i].block[cursors[i].pos];
        cursors[i].pos += 1;
        advance(&mut cursors[i])?;
        p.id = PacketId(next_id);
        next_id += 1;
        out.record(&p)?;
    }
    Ok(out.finish()?.1)
}

/// Derives the output metadata from the input header, appending the
/// transform to the description chain.
fn scaled_meta(header: &TraceHeader, what: &str) -> TraceMeta {
    let mut description = format!("{} | {}", header.meta.description, what);
    // The header field is u16-length; keep the newest provenance.
    while description.len() > u16::MAX as usize {
        let cut = description.len() - u16::MAX as usize;
        description = description[cut..].to_string();
    }
    TraceMeta {
        grid_side: header.meta.grid_side,
        seed: header.meta.seed,
        description,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWriter;
    use netcore::MessageKind;
    use std::io::Cursor;

    fn packet(id: u64, src: usize, dst: usize, ps: u64, kind: MessageKind) -> Packet {
        Packet::new(
            PacketId(id),
            SiteId::from_index(src),
            SiteId::from_index(dst),
            64,
            kind,
            Time::from_ps(ps),
        )
    }

    fn trace(packets: &[Packet]) -> Vec<u8> {
        let meta = TraceMeta {
            grid_side: 4,
            seed: 5,
            description: "transform test".into(),
        };
        let mut w = TraceWriter::create(Cursor::new(Vec::new()), &meta).expect("create");
        for p in packets {
            w.record(p).expect("record");
        }
        w.finish().expect("finish").0.into_inner()
    }

    fn reader(bytes: &[u8]) -> TraceReader<Cursor<Vec<u8>>> {
        TraceReader::new(Cursor::new(bytes.to_vec())).expect("open")
    }

    fn read_all(bytes: &[u8]) -> Vec<Packet> {
        let mut r = reader(bytes);
        let mut all = Vec::new();
        let mut block = Vec::new();
        while r.next_block(&mut block).expect("block") > 0 {
            all.extend(block.iter().copied());
        }
        all
    }

    #[test]
    fn time_scale_stretches_and_compresses() {
        let bytes = trace(&[
            packet(0, 0, 1, 100, MessageKind::Data),
            packet(1, 2, 3, 1000, MessageKind::Data),
        ]);
        let mut out = Cursor::new(Vec::new());
        time_scale(reader(&bytes), &mut out, 3, 2).expect("scale");
        let scaled = read_all(&out.into_inner());
        assert_eq!(scaled[0].created.as_ps(), 150);
        assert_eq!(scaled[1].created.as_ps(), 1500);

        let mut out = Cursor::new(Vec::new());
        time_scale(reader(&bytes), &mut out, 1, 2).expect("scale");
        let scaled = read_all(&out.into_inner());
        assert_eq!(scaled[0].created.as_ps(), 50);
        assert_eq!(scaled[1].created.as_ps(), 500);
    }

    #[test]
    fn time_scale_rejects_zero_factor() {
        let bytes = trace(&[packet(0, 0, 1, 100, MessageKind::Data)]);
        let err = time_scale(reader(&bytes), Cursor::new(Vec::new()), 0, 1).expect_err("zero");
        assert!(err.to_string().contains("positive"), "{err}");
    }

    #[test]
    fn site_remap_rewrites_endpoints() {
        let bytes = trace(&[packet(0, 0, 1, 100, MessageKind::Data)]);
        // Reverse the 16-site grid.
        let map: Vec<u16> = (0..16).rev().collect();
        let mut out = Cursor::new(Vec::new());
        site_remap(reader(&bytes), &mut out, &map).expect("remap");
        let remapped = read_all(&out.into_inner());
        assert_eq!(remapped[0].src.index(), 15);
        assert_eq!(remapped[0].dst.index(), 14);
    }

    #[test]
    fn site_remap_validates_the_map() {
        let bytes = trace(&[packet(0, 0, 1, 100, MessageKind::Data)]);
        let short = vec![0u16; 3];
        assert!(site_remap(reader(&bytes), Cursor::new(Vec::new()), &short).is_err());
        let out_of_range = vec![16u16; 16];
        assert!(site_remap(reader(&bytes), Cursor::new(Vec::new()), &out_of_range).is_err());
    }

    #[test]
    fn filter_keeps_matching_packets() {
        let bytes = trace(&[
            packet(0, 0, 1, 100, MessageKind::Data),
            packet(1, 2, 3, 200, MessageKind::Ack),
            packet(2, 1, 2, 300, MessageKind::Data),
        ]);
        let mut out = Cursor::new(Vec::new());
        filter(
            reader(&bytes),
            &mut out,
            |p| p.kind == MessageKind::Data,
            "kind=data",
        )
        .expect("filter");
        let kept = read_all(&out.into_inner());
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|p| p.kind == MessageKind::Data));
        // Original ids survive filtering (provenance).
        assert_eq!(kept[1].id, PacketId(2));
    }

    #[test]
    fn truncate_stops_at_count_and_time() {
        let packets: Vec<Packet> = (0..100)
            .map(|i| packet(i, 0, 1, i * 10, MessageKind::Data))
            .collect();
        let bytes = trace(&packets);
        let mut out = Cursor::new(Vec::new());
        truncate(reader(&bytes), &mut out, 7, None).expect("truncate");
        assert_eq!(read_all(&out.into_inner()).len(), 7);

        let mut out = Cursor::new(Vec::new());
        truncate(reader(&bytes), &mut out, u64::MAX, Some(Time::from_ps(55))).expect("truncate");
        let kept = read_all(&out.into_inner());
        assert_eq!(kept.len(), 6); // created 0..=50
        assert!(kept.iter().all(|p| p.created.as_ps() <= 55));
    }

    #[test]
    fn merge_interleaves_by_time_and_renumbers() {
        let a = trace(&[
            packet(10, 0, 1, 100, MessageKind::Data),
            packet(11, 0, 1, 300, MessageKind::Data),
        ]);
        let b = trace(&[
            packet(20, 2, 3, 200, MessageKind::Ack),
            packet(21, 2, 3, 300, MessageKind::Ack),
        ]);
        let mut out = Cursor::new(Vec::new());
        merge(vec![reader(&a), reader(&b)], &mut out).expect("merge");
        let merged = read_all(&out.into_inner());
        let times: Vec<u64> = merged.iter().map(|p| p.created.as_ps()).collect();
        assert_eq!(times, vec![100, 200, 300, 300]);
        // Tie at 300 ps: input order, trace A first.
        assert_eq!(merged[2].kind, MessageKind::Data);
        assert_eq!(merged[3].kind, MessageKind::Ack);
        let ids: Vec<u64> = merged.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merged_output_is_a_valid_trace() {
        let a = trace(&[packet(0, 0, 1, 50, MessageKind::Data)]);
        let b = trace(&[packet(0, 2, 3, 25, MessageKind::Data)]);
        let mut out = Cursor::new(Vec::new());
        let header = merge(vec![reader(&a), reader(&b)], &mut out).expect("merge");
        assert_eq!(header.packets, 2);
        let merged = read_all(&out.into_inner());
        assert_eq!(merged[0].created.as_ps(), 25);
    }
}
