//! Photonic link engineering: walk the optical power budgets behind the
//! paper's Table 1/Table 5 analysis — where every decibel goes, and why
//! the switched architectures need 5-30x the laser power.
//!
//! ```sh
//! cargo run --release -p macrochip-examples --example link_budget
//! ```

use photonics::geometry::Layout;
use photonics::inventory::NetworkId;
use photonics::link::LinkBudget;
use photonics::power::NetworkPower;
use photonics::units::Dbm;

fn main() {
    let launch = Dbm::new(0.0); // 1 mW at the modulator

    for budget in [
        LinkBudget::unswitched_site_to_site(),
        LinkBudget::two_phase_worst(),
        LinkBudget::circuit_switched_worst(),
        LinkBudget::token_ring_path(),
    ] {
        println!("{budget}");
        println!(
            "  margin over -21 dBm receiver at {launch} launch: {} ({})\n",
            budget.margin(launch),
            if budget.closes(launch) {
                "link closes"
            } else {
                "needs more laser power"
            }
        );
    }

    println!("Resulting laser power per network (Table 5):");
    let layout = Layout::macrochip();
    for id in NetworkId::ALL {
        let p = NetworkPower::for_network(id, &layout);
        println!(
            "  {:<24} {:>4.0}x loss factor -> {:>6.1} W of laser",
            id.name(),
            p.loss_factor,
            p.laser.watts()
        );
    }
}
