//! Library target anchoring the examples package; the runnable examples
//! live in the `examples/` subdirectory of this package.
