//! Face-off: run the same coherent workload over all six network
//! architectures and compare performance, power and energy-delay product —
//! a miniature of the paper's §6 evaluation.
//!
//! ```sh
//! cargo run --release -p macrochip-examples --example network_faceoff
//! ```

use macrochip::prelude::*;

fn main() {
    let config = MacrochipConfig::scaled();
    let model = NetworkEnergyModel::default();

    // A moderate synthetic workload: uniform-random coherence requests
    // with the paper's Less Sharing mix.
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 40,
    };

    println!("Workload: {} ({} misses/core)\n", spec.name(), 40);
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>14}",
        "Network", "Makespan", "Op latency", "Static (W)", "EDP vs p2p"
    );

    let p2p = run_coherent(NetworkKind::PointToPoint, &spec, &config, 7);
    let p2p_edp = model.edp(&p2p);

    for kind in NetworkKind::ALL {
        let run = run_coherent(kind, &spec, &config, 7);
        println!(
            "{:<24} {:>9.2} us {:>9.1} ns {:>12.1} {:>13.1}x",
            kind.name(),
            run.makespan.as_ns_f64() / 1e3,
            run.mean_op_latency.as_ns_f64(),
            model.static_watts(kind),
            model.edp(&run) / p2p_edp,
        );
    }

    println!(
        "\nThe point-to-point network wins on both time and energy — the \
         paper's central result (§6)."
    );
}
