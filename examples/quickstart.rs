//! Quickstart: build a macrochip network, push packets through it, and
//! read the measured latency.
//!
//! ```sh
//! cargo run --release -p macrochip-examples --example quickstart
//! ```

use desim::Time;
use netcore::{MacrochipConfig, MessageKind, NetworkKind, Packet, PacketId};

fn main() {
    // The paper's simulated configuration (Table 4): an 8x8 macrochip,
    // 8 cores/site, 320 GB/s per site, 20 TB/s peak.
    let config = MacrochipConfig::scaled();
    println!(
        "macrochip: {} sites, {:.0} GB/s per site, {:.0} TB/s peak\n",
        config.grid.sites(),
        config.site_bandwidth_bytes_per_ns(),
        config.total_peak_bytes_per_ns() / 1024.0
    );

    // Build the paper's winning architecture: the static WDM-routed
    // point-to-point network (§4.2).
    let mut net = networks::build(NetworkKind::PointToPoint, config);

    // Send one cache line from corner to corner.
    let (src, dst) = (config.grid.site(0, 0), config.grid.site(7, 7));
    let packet = Packet::new(PacketId(0), src, dst, 64, MessageKind::Data, Time::ZERO);
    net.inject(packet, Time::ZERO).expect("queue empty at t=0");

    // Run the event loop until the network goes idle.
    while let Some(t) = net.next_event() {
        net.advance(t);
    }

    for p in net.drain_delivered() {
        println!(
            "{} -> {}: {} bytes delivered in {}",
            p.src,
            p.dst,
            p.bytes,
            p.latency().expect("delivered")
        );
        println!("  (64 B at 5 GB/s = 12.8 ns serialization + 3.5 ns time of flight)");
    }
}
