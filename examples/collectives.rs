//! Message-passing collectives on the macrochip — the paper's §8 future
//! work. Shows that the verdict flips with the workload: cache-coherence
//! traffic crowns the point-to-point network, but bulk collectives reward
//! the wide-channel designs.
//!
//! ```sh
//! cargo run --release -p macrochip-examples --example collectives
//! ```

use desim::Time;
use macrochip::prelude::*;
use macrochip::runner::{drive, DriveLimits};
use netcore::PacketSource;
use workloads::{Collective, MessagePassingWorkload};

fn main() {
    let config = MacrochipConfig::scaled();

    for &bytes in &[64u32, 4096] {
        println!("== all-to-all personalized exchange, {bytes} B per transfer ==");
        for kind in [
            NetworkKind::PointToPoint,
            NetworkKind::LimitedPointToPoint,
            NetworkKind::TwoPhase,
            NetworkKind::TokenRing,
            NetworkKind::CircuitSwitched,
        ] {
            let mut net = networks::build(kind, config);
            let mut w = MessagePassingWorkload::new(
                &config.grid,
                Collective::AllToAllPersonalized,
                bytes,
                1,
            );
            let outcome = drive(
                net.as_mut(),
                &mut w,
                DriveLimits {
                    deadline: Time::from_us(1_000_000),
                    max_stalled: usize::MAX,
                },
            );
            assert!(!outcome.timed_out && w.is_exhausted());
            println!(
                "  {:<24} {:>9.2} us",
                kind.name(),
                w.finished_at().expect("finished").as_us_f64()
            );
        }
        println!();
    }

    println!(
        "At cache-line granularity the point-to-point network's zero overhead wins;\n\
         at 4 KB transfers its narrow 5 GB/s channels become the bottleneck and the\n\
         wider data paths take over — the trade-off the paper's §8 future work\n\
         anticipated for message-passing workloads."
    );
}
