//! Application study: replay the Blackscholes and Fluidanimate (forces)
//! workload models — statistical traces over real MOESI caches and
//! directories — and watch how communication locality changes which
//! network wins.
//!
//! ```sh
//! cargo run --release -p macrochip-examples --example coherent_app
//! ```

use macrochip::prelude::*;

fn main() {
    let config = MacrochipConfig::scaled();

    let profiles: Vec<AppProfile> = AppProfile::suite()
        .into_iter()
        .filter(|p| p.name == "Blackscholes" || p.name == "Forces")
        .map(|p| p.with_ops_per_core(60))
        .collect();

    for profile in profiles {
        let spec = WorkloadSpec::App(profile);
        println!(
            "== {} (write fraction {:.0}%, {}) ==",
            profile.name,
            profile.write_fraction * 100.0,
            if profile.neighbor_locality {
                "neighbor-local sharing"
            } else {
                "global sharing"
            }
        );
        let baseline = run_coherent(NetworkKind::CircuitSwitched, &spec, &config, 21);
        for kind in [
            NetworkKind::PointToPoint,
            NetworkKind::LimitedPointToPoint,
            NetworkKind::TokenRing,
            NetworkKind::CircuitSwitched,
        ] {
            let run = run_coherent(kind, &spec, &config, 21);
            println!(
                "  {:<24} op latency {:>6.1} ns   speedup vs circuit {:>5.2}x   {:>6.1} KB routed electronically",
                kind.name(),
                run.mean_op_latency.as_ns_f64(),
                run.speedup_over(&baseline),
                run.routed_bytes as f64 / 1024.0,
            );
        }
        println!();
    }

    println!(
        "Fluidanimate's neighbor-local traffic narrows the gap for the \
         limited point-to-point network: its row/column channels match the \
         communication pattern, so almost nothing crosses a router."
    );
}
