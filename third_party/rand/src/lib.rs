//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate vendors exactly the surface the simulator uses: the
//! `RngCore`/`SeedableRng`/`Rng` traits, `rngs::StdRng`, `gen::<f64>()`,
//! `gen_range(..)` and the uniform-sampling trait bounds. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms
//! and of more than sufficient statistical quality for simulation workloads.
//!
//! It is **not** the upstream crate: `StdRng` here produces a different
//! stream than upstream's ChaCha12-based `StdRng`. All golden tests in this
//! workspace assert tolerance bands, not exact stream values, so the swap is
//! observationally safe.

// The Lemire bounded-sampling reduction narrows 128-bit products and the
// output type truncation in `fill_via_u64` is the whole point; exempt this
// vendored crate from the workspace's narrowing-cast gate.
#![allow(clippy::cast_possible_truncation)]

pub mod distributions;
pub mod rngs;

pub use distributions::uniform;

/// Core random-number source: raw 32/64-bit output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into full seed material with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            for (b, out) in v.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience sampling methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (uniform `[0, 1)` for floats, full-range for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: uniform::SampleUniform,
        R: uniform::SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Bernoulli trial: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..10);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(0u64..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_every_byte_pattern_region() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
