//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++.
///
/// Unlike upstream `rand`, the exact output stream is part of this crate's
/// contract — simulations seeded with the same value must replay identically
/// across builds, which is why a small, fully-specified PRNG is preferable
/// here to tracking upstream's unspecified `StdRng` algorithm.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2018).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> StdRng {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x2545_F491_4F6C_DD1D,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
            ];
        }
        StdRng { s }
    }
}
