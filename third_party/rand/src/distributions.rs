//! Sampling distributions: the `Standard` distribution and uniform ranges.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform `[0, 1)` for floats,
/// full-range uniform for integers, fair coin for bool.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, mirroring `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform sample from `[low, high)` (`high` exclusive). The caller
        /// guarantees `low < high`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform sample from `[low, high]` (both inclusive). The caller
        /// guarantees `low <= high`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Uniform draw from `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift rejection method).
    fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = rng.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as i128 - low as i128) as u64;
                    low.wrapping_add(bounded_u64(rng, span) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as i128 - low as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Only reachable for the full u64/i64 domain.
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(bounded_u64(rng, span as u64) as $t)
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let v = low as f64 + (high as f64 - low as f64) * u;
                    // Rounding can land exactly on `high`; clamp back inside.
                    if v >= high as f64 { low } else { v as $t }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                    (low as f64 + (high as f64 - low as f64) * u) as $t
                }
            }
        )*};
    }

    impl_uniform_float!(f32, f64);

    /// Range-shaped arguments accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
        fn is_empty(&self) -> bool {
            self.start >= self.end
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
        fn is_empty(&self) -> bool {
            self.start() > self.end()
        }
    }
}
