//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy type of [`ANY`]: a fair coin.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// Generates `true` and `false` with equal probability.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng().gen::<u64>() & 1 == 1
    }
}
