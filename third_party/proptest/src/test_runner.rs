//! Test configuration, RNG and failure plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; that is cheap for this workspace's
        // properties and keeps coverage comparable.
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies: deterministic, seeded per case so every
/// run of the suite generates the same inputs.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator for case number `case`, independent of wall clock and
    /// process state.
    pub fn deterministic(case: u64) -> TestRng {
        const SUITE_SEED: u64 = 0x5EED_CAFE_F00D_D00D;
        TestRng {
            inner: StdRng::seed_from_u64(SUITE_SEED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Access to the underlying source for `gen_range` etc.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
