//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value-tree/shrinking machinery:
/// `generate` directly produces a value from the test RNG.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy, for heterogeneous collections
    /// (used by `prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Constructs a [`Union`]; used by the `prop_oneof!` macro expansion.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn union<T: std::fmt::Debug>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union { options }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}
