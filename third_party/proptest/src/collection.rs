//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec`s with lengths drawn from `len` and elements from
/// `element`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.rng().gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
