//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! crate vendors the slice of proptest the test suite actually uses: the
//! `proptest!` macro (with an optional `#![proptest_config(..)]` header),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, the [`Strategy`]
//! trait with `prop_map`, integer/float range strategies, tuple strategies,
//! `proptest::collection::vec`, `proptest::bool::ANY`, `prop_oneof!` and
//! `Just`.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic run-to-run) and failing inputs are reported but **not
//! shrunk**. Both are acceptable for this workspace: determinism is a
//! project-wide requirement and the generated inputs are small enough to
//! debug unshrunk.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The single test-runner entry point used by the generated tests.
pub fn run_cases<F>(config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng, u32),
{
    for i in 0..config.cases {
        // Each case gets an independent deterministic stream.
        let mut rng = test_runner::TestRng::deterministic(i as u64);
        case(&mut rng, i);
    }
}

/// Defines property tests.
///
/// In a test module each function carries `#[test]`; the attribute list
/// may also be empty, which makes the expansion directly callable (as
/// done here so the example actually runs):
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     fn holds(x in 0u64..100, ys in proptest::collection::vec(0u32..9, 1..20)) {
///         prop_assert!(x < 100);
///         prop_assert!(!ys.is_empty());
///     }
/// }
/// holds();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(&config, |rng, case| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n    inputs: {}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the generated
/// inputs on failure instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
