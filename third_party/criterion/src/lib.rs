//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! crate vendors the slice of criterion the bench suite uses: `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size`,
//! `bench_function`, `bench_with_input`, `finish`), `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples; the per-iteration mean, minimum and maximum across
//! samples are printed. There are no HTML reports, no statistical regression
//! tests, and no `--save-baseline`; compare the printed ns/iter numbers
//! across runs instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id from a function name + parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying only the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Drives a single benchmark body.
pub struct Bencher {
    samples: usize,
    /// Mean ns/iter per sample, filled by `iter`.
    results: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f`, amortizing over enough iterations per sample to make
    /// `Instant` overhead negligible.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: grow until one batch
        // takes at least ~2 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.results
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.results.is_empty() {
            println!("{id:<40} no measurement");
            return;
        }
        let mean = self.results.iter().sum::<f64>() / self.results.len() as f64;
        let min = self.results.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.results.iter().cloned().fold(0.0f64, f64::max);
        println!("{id:<40} time: [{min:>12.1} ns {mean:>12.1} ns {max:>12.1} ns]");
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.default_samples);
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.samples = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept and
            // ignore them.
            $($group();)+
        }
    };
}
